//! The DoPE-Executive: launch, monitor, reconfigure, finish.

use crate::instance::{instantiate, instantiate_paths, LiveCx, WorkerJob};
use crate::monitor::Monitor;
use crate::pool::WorkerPool;
use dope_core::{
    realized_throughput, AdmissionPolicy, AdmissionStats, Config, DecisionTrace, Error,
    FailurePolicy, FailureVerdict, Goal, Mechanism, ProgramShape, QueueStats, Resources, Result,
    StaticMechanism, TaskOutcome, TaskPath, TaskSpec, TaskStatus,
};
use dope_metrics::{names, Counter, Histogram, MetricsRegistry};
use dope_platform::{FeatureObserver, FeatureRegistry};
use dope_trace::{Recorder, TraceEvent, Verdict};
use std::collections::HashMap;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{mpsc, Arc};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Report returned when a DoPE-managed application finishes.
#[derive(Debug, Clone)]
pub struct RunReport {
    /// Wall-clock duration of the run.
    pub elapsed: Duration,
    /// Number of applied reconfigurations.
    pub reconfigurations: u64,
    /// Mechanism proposals rejected by validation.
    pub rejected_configs: u64,
    /// Configuration in force at the end.
    pub final_config: Config,
    /// `(elapsed_secs, config)` for every applied configuration, the
    /// initial one included.
    pub config_history: Vec<(f64, Config)>,
    /// Task replicas that failed (panicked or vanished) during the run.
    pub task_failures: u64,
    /// Failed replicas the `Restart` policy re-instantiated.
    pub task_restarts: u64,
    /// Worker jobs that vanished without reporting a status. Always
    /// `<= task_failures`; non-zero means the report must not be read
    /// as clean success even if the run "completed".
    pub lost_jobs: u64,
    /// The failure-handling verdict: clean, recovered, degraded, or
    /// lost-work (most severe thing that happened, see
    /// [`FailureVerdict`]).
    pub failure_verdict: FailureVerdict,
}

/// Builder for a [`Dope`] executive (the paper's `DoPE::create`).
pub struct DopeBuilder {
    goal: Goal,
    mechanism: Option<Box<dyn Mechanism>>,
    control_period: Duration,
    throughput_window: Duration,
    features: FeatureRegistry,
    queue_probe: Option<Arc<dyn Fn() -> QueueStats + Send + Sync>>,
    admission: AdmissionPolicy,
    admission_probe: Option<Arc<dyn Fn() -> AdmissionStats + Send + Sync>>,
    pool_threads: Option<u32>,
    recorder: Recorder,
    metrics: Option<MetricsRegistry>,
    failure_policy: FailurePolicy,
    delta_reconfig: bool,
}

impl std::fmt::Debug for DopeBuilder {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DopeBuilder")
            .field("goal", &self.goal)
            .field("control_period", &self.control_period)
            .finish_non_exhaustive()
    }
}

impl DopeBuilder {
    fn new(goal: Goal) -> Self {
        DopeBuilder {
            goal,
            mechanism: None,
            control_period: Duration::from_millis(100),
            throughput_window: Duration::from_secs(5),
            features: FeatureRegistry::new(),
            queue_probe: None,
            admission: AdmissionPolicy::Open,
            admission_probe: None,
            pool_threads: None,
            recorder: Recorder::disabled(),
            metrics: None,
            failure_policy: FailurePolicy::default(),
            delta_reconfig: true,
        }
    }

    /// Overrides the mechanism (otherwise the executive runs a static even
    /// split — link `dope-mechanisms` and pass `for_goal(goal)` for the
    /// adaptive defaults).
    #[must_use]
    pub fn mechanism(mut self, mechanism: Box<dyn Mechanism>) -> Self {
        self.mechanism = Some(mechanism);
        self
    }

    /// How often the executive consults the mechanism.
    #[must_use]
    pub fn control_period(mut self, period: Duration) -> Self {
        self.control_period = period;
        self
    }

    /// The sliding window for throughput measurements.
    #[must_use]
    pub fn throughput_window(mut self, window: Duration) -> Self {
        self.throughput_window = window;
        self
    }

    /// Installs a platform feature registry (paper Figure 9); register a
    /// `"SystemPower"` feature to feed power-aware mechanisms.
    #[must_use]
    pub fn features(mut self, features: FeatureRegistry) -> Self {
        self.features = features;
        self
    }

    /// Installs the work-queue probe behind `snapshot().queue`.
    #[must_use]
    pub fn queue_probe<F>(mut self, probe: F) -> Self
    where
        F: Fn() -> QueueStats + Send + Sync + 'static,
    {
        self.queue_probe = Some(Arc::new(probe));
        self
    }

    /// Declares the run's admission policy — how the front door treats
    /// offered requests past saturation (see
    /// [`AdmissionPolicy`]). Validated at [`launch`](Self::launch)
    /// (diagnostic `DV017`). The executive does not gate requests
    /// itself — the application routes its producers through a
    /// `dope_workload::admission::AdmissionQueue` built with the same
    /// policy — but declaring it here makes the launch fail fast on a
    /// degenerate policy and tags the admission samples the monitor
    /// records with the policy kind.
    #[must_use]
    pub fn admission(mut self, policy: AdmissionPolicy) -> Self {
        self.admission = policy;
        self
    }

    /// Installs the admission-gate probe behind `snapshot().admission`
    /// (pass `AdmissionQueue::stats_probe()`): the monitor then polls
    /// the gate's cumulative counters into every snapshot — so
    /// mechanisms see admission pressure as a monitored signal — and,
    /// when a recorder or metrics registry is attached, emits one
    /// `AdmissionDecision` trace event per pressured control period and
    /// exports `dope_admitted_total` / `dope_shed_total` /
    /// `dope_admission_queue_delay`.
    #[must_use]
    pub fn admission_probe<F>(mut self, probe: F) -> Self
    where
        F: Fn() -> AdmissionStats + Send + Sync + 'static,
    {
        self.admission_probe = Some(Arc::new(probe));
        self
    }

    /// Overrides the worker-pool size (defaults to the goal's thread
    /// budget). Values above the budget let baselines oversubscribe.
    #[must_use]
    pub fn pool_threads(mut self, threads: u32) -> Self {
        self.pool_threads = Some(threads);
        self
    }

    /// Attaches a flight recorder (see `dope-trace`): the executive then
    /// records `Launched`, `SnapshotTaken`, `ProposalEvaluated`,
    /// `ReconfigureEpoch` (with measured pause/relaunch latencies), and
    /// `Finished` events; the monitor records per-task and queue samples;
    /// and platform feature reads record `FeatureRead`. A
    /// [`Recorder::disabled`] handle (the default) keeps every hook a
    /// no-op.
    #[must_use]
    pub fn recorder(mut self, recorder: Recorder) -> Self {
        self.recorder = recorder;
        self
    }

    /// Attaches a live metrics registry (see `dope-metrics`): the
    /// monitor then exports per-task `dope_task_exec_seconds` latency
    /// histograms, queue gauges, and its self-measured overhead; the
    /// executive exports `dope_reconfigure_epochs_total`, measured
    /// pause/relaunch latency histograms, and per-verdict proposal
    /// counts; the pool exports dispatch/park counters; and platform
    /// feature reads mirror into the `dope_power_watts` gauge. Serve the
    /// same registry with `dope_metrics::MetricsServer` to scrape the
    /// run live, or dump `registry.render()` at the end.
    #[must_use]
    pub fn metrics(mut self, registry: MetricsRegistry) -> Self {
        self.metrics = Some(registry);
        self
    }

    /// What the executive does when a task body panics mid-run (the
    /// worker thread itself always survives — the pool contains the
    /// unwind). The default is [`FailurePolicy::Abort`]: fail fast with
    /// the panic message in the returned error. `Restart` re-instantiates
    /// the epoch (up to a retry budget, with backoff); `Degrade` drops
    /// the failed replica's degree of parallelism and keeps going.
    /// Either way the failure is counted in the [`RunReport`], traced as
    /// a `TaskFailed` event, and exported as
    /// `dope_task_failures_total`.
    #[must_use]
    pub fn failure_policy(mut self, policy: FailurePolicy) -> Self {
        self.failure_policy = policy;
        self
    }

    /// Enables or disables partial (delta) reconfigurations (enabled by
    /// default). When enabled, an accepted proposal that only changes
    /// the extent of top-level leaf tasks drains *just those paths* to a
    /// consistent point and splices the relaunched replicas into the
    /// running epoch — every other replica keeps executing across the
    /// boundary. Structural changes (and every drain triggered by stop
    /// or a failure policy) always take the full-drain path. Disable to
    /// force the paper's original drain-the-world protocol, e.g. for
    /// A/B latency measurements.
    #[must_use]
    pub fn delta_reconfig(mut self, enabled: bool) -> Self {
        self.delta_reconfig = enabled;
        self
    }

    /// Launches the application described by `descriptor` under the DoPE
    /// run-time system.
    ///
    /// # Errors
    ///
    /// Returns an error if the initial configuration fails validation or
    /// the descriptor cannot be instantiated.
    pub fn launch(self, descriptor: Vec<TaskSpec>) -> Result<Dope> {
        Dope::launch(self, descriptor)
    }
}

/// Shared executive state.
struct Shared {
    suspend: Arc<AtomicBool>,
    stop: AtomicBool,
    monitor: Monitor,
}

/// The Degree of Parallelism Executive.
///
/// See the [crate docs](crate) for an end-to-end example.
pub struct Dope {
    control: Option<JoinHandle<Result<RunReport>>>,
    shared: Arc<Shared>,
}

impl std::fmt::Debug for Dope {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Dope").finish_non_exhaustive()
    }
}

impl Dope {
    /// Starts building an executive for `goal`.
    #[must_use]
    pub fn builder(goal: Goal) -> DopeBuilder {
        DopeBuilder::new(goal)
    }

    /// The live monitor (snapshots, feature registry).
    #[must_use]
    pub fn monitor(&self) -> Monitor {
        self.shared.monitor.clone()
    }

    /// Requests an orderly early stop: tasks are suspended and the run
    /// report is produced.
    pub fn stop(&self) {
        self.shared.stop.store(true, Ordering::Release);
        self.shared.suspend.store(true, Ordering::Release);
    }

    /// Waits for the application to finish (the paper's `DoPE::destroy`
    /// waits for registered tasks to end).
    ///
    /// # Errors
    ///
    /// Propagates launch-time validation errors from reconfigurations,
    /// [`Error::TaskFailed`] when the failure policy aborted the run,
    /// and — should the control thread itself panic — an
    /// [`Error::Usage`] carrying the downcast panic payload so operators
    /// see *why* the executive died, not just that it did.
    pub fn wait(mut self) -> Result<RunReport> {
        let Some(handle) = self.control.take() else {
            return Err(Error::Usage(
                "wait() may only be called once per Dope instance".to_string(),
            ));
        };
        handle.join().map_err(|payload| {
            Error::Usage(format!(
                "executive control thread panicked: {}",
                panic_reason(payload.as_ref())
            ))
        })?
    }

    fn launch(builder: DopeBuilder, descriptor: Vec<TaskSpec>) -> Result<Dope> {
        builder.admission.validate()?;
        let goal = builder.goal;
        let budget = goal.threads().max(1);
        let shape = ProgramShape::of_specs(&descriptor);
        let res = Resources {
            threads: budget,
            power_budget_watts: goal.power_budget_watts(),
            peak_power_watts: None,
        };

        let mut mechanism: Box<dyn Mechanism> = builder.mechanism.unwrap_or_else(|| {
            Box::new(StaticMechanism::new(Config::even(&shape, budget)).named("Static-Even"))
        });

        let initial = mechanism
            .initial(&shape, &res)
            .unwrap_or_else(|| Config::even(&shape, budget));
        let launch_budget = builder.pool_threads.unwrap_or(budget).max(budget);
        initial.validate(&shape, launch_budget)?;
        debug_verify_gate("launch", &shape, &initial, launch_budget);

        let recorder = builder.recorder;
        recorder.record_with(|| TraceEvent::Launched {
            mechanism: mechanism.name().to_string(),
            goal: goal.to_string(),
            threads: budget,
            shape: shape.clone(),
            config: initial.clone(),
        });

        let monitor = Monitor::new(builder.throughput_window, 0.25, builder.features.clone());
        if let Some(probe) = &builder.queue_probe {
            let probe = Arc::clone(probe);
            monitor.set_queue_probe(move || probe());
        }
        if let Some(probe) = &builder.admission_probe {
            let probe = Arc::clone(probe);
            monitor.set_admission_probe(builder.admission.kind(), move || probe());
        }
        if recorder.is_enabled() {
            monitor.set_recorder(recorder.clone());
        }
        let exec_metrics = builder.metrics.as_ref().map(|registry| {
            monitor.set_metrics(registry.clone());
            ExecMetrics::new(registry)
        });
        // The feature registry has a single observer slot, so the
        // flight-recorder hook and the platform metrics mirror compose
        // into one closure.
        let mut observers: Vec<FeatureObserver> = Vec::new();
        if recorder.is_enabled() {
            let feature_recorder = recorder.clone();
            observers.push(Arc::new(move |feature: &str, value: f64| {
                feature_recorder.record(TraceEvent::FeatureRead {
                    feature: feature.to_string(),
                    value,
                });
            }));
        }
        if let Some(registry) = &builder.metrics {
            observers.push(dope_platform::metrics_observer(registry));
        }
        if !observers.is_empty() {
            builder
                .features
                .set_observer(Some(Arc::new(move |feature: &str, value: f64| {
                    for observer in &observers {
                        observer(feature, value);
                    }
                })));
        }

        let shared = Arc::new(Shared {
            suspend: Arc::new(AtomicBool::new(false)),
            stop: AtomicBool::new(false),
            monitor: monitor.clone(),
        });

        let pool = WorkerPool::new(builder.pool_threads.unwrap_or(budget).max(1));
        if let Some(registry) = &builder.metrics {
            pool.register_metrics(registry);
        }
        let control_period = builder.control_period;
        let window = builder.throughput_window;
        let failure_policy = builder.failure_policy;
        let delta_enabled = builder.delta_reconfig;
        let shared_for_thread = Arc::clone(&shared);

        let control = std::thread::Builder::new()
            .name("dope-executive".to_string())
            .spawn(move || {
                run_control_loop(
                    &descriptor,
                    &shape,
                    initial,
                    mechanism.as_mut(),
                    res,
                    &pool,
                    &shared_for_thread,
                    control_period,
                    window,
                    failure_policy,
                    delta_enabled,
                    &recorder,
                    exec_metrics.as_ref(),
                )
            })
            .map_err(|err| Error::Usage(format!("spawning the executive thread failed: {err}")))?;

        Ok(Dope {
            control: Some(control),
            shared,
        })
    }
}

/// Extracts a human-readable panic reason from a caught payload.
///
/// `panic!("...")` yields `&'static str`; `panic!("{x}")` and
/// `String::from` payloads yield `String`; anything else (custom
/// `panic_any` values) is summarized as opaque.
fn panic_reason(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&'static str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Registry handles for the executive's own metric series.
struct ExecMetrics {
    epochs: Arc<Counter>,
    pause: Arc<Histogram>,
    relaunch: Arc<Histogram>,
    reconfig_partial: Arc<Counter>,
    paths_drained: Arc<Histogram>,
    proposals_accepted: Arc<Counter>,
    proposals_unchanged: Arc<Counter>,
    proposals_rejected: Arc<Counter>,
    task_failures: Arc<Counter>,
    task_restarts: Arc<Counter>,
    prediction_over: Arc<Histogram>,
    prediction_under: Arc<Histogram>,
    /// Kept for the per-rationale decision counters: the label value is
    /// the decision's rationale code, which is only known when the
    /// decision happens, so the series is created (or re-fetched) on
    /// first use per code.
    registry: MetricsRegistry,
}

impl ExecMetrics {
    fn new(registry: &MetricsRegistry) -> Self {
        let proposals = |verdict: &str| {
            registry.counter_with_labels(
                names::PROPOSALS_TOTAL,
                "Mechanism proposals evaluated, by verdict",
                &[("verdict", verdict)],
            )
        };
        ExecMetrics {
            epochs: registry.counter(
                names::RECONFIGURE_EPOCHS_TOTAL,
                "Completed reconfiguration epochs",
            ),
            pause: registry.histogram(
                names::RECONFIGURE_PAUSE_SECONDS,
                "Measured suspend-and-drain latency per reconfiguration",
            ),
            relaunch: registry.histogram(
                names::RECONFIGURE_RELAUNCH_SECONDS,
                "Measured relaunch latency per reconfiguration",
            ),
            reconfig_partial: registry.counter(
                names::RECONFIG_PARTIAL_TOTAL,
                "Reconfiguration epochs applied as partial (delta) drains",
            ),
            paths_drained: registry.histogram(
                names::RECONFIG_PATHS_DRAINED,
                "Replica-carrying paths drained per reconfiguration boundary",
            ),
            proposals_accepted: proposals("accepted"),
            proposals_unchanged: proposals("unchanged"),
            proposals_rejected: proposals("rejected"),
            task_failures: registry.counter(
                names::TASK_FAILURES_TOTAL,
                "Task replicas that failed (panicked or vanished) during the run",
            ),
            task_restarts: registry.counter(
                names::TASK_RESTARTS_TOTAL,
                "Failed replicas re-instantiated by the Restart failure policy",
            ),
            prediction_over: registry.histogram_with_labels(
                names::MECHANISM_PREDICTION_ERROR,
                "Magnitude of the mechanism's relative throughput-prediction error, by sign",
                &[("sign", "over")],
            ),
            prediction_under: registry.histogram_with_labels(
                names::MECHANISM_PREDICTION_ERROR,
                "Magnitude of the mechanism's relative throughput-prediction error, by sign",
                &[("sign", "under")],
            ),
            registry: registry.clone(),
        }
    }

    /// Accounts one explained decision: bumps the rationale counter and,
    /// when the decision was scored, records the prediction-error
    /// magnitude under its sign (`over` = the mechanism promised more
    /// throughput than the next snapshot realized).
    fn record_decision(&self, rationale_code: &str, prediction_error: Option<f64>) {
        self.registry
            .counter_with_labels(
                names::DECISION_RATIONALE_TOTAL,
                "Decisions explained by the mechanism, by rationale code",
                &[("rationale", rationale_code)],
            )
            .inc();
        if let Some(error) = prediction_error {
            let histogram = if error >= 0.0 {
                &self.prediction_over
            } else {
                &self.prediction_under
            };
            histogram.record_secs(error.abs());
        }
    }
}

/// Emits one held decision, scored against `realized` (the bottleneck
/// throughput of the snapshot that followed it), stamped at the
/// decision's own time. Mirrors `RecordingObserver::emit_decision` in
/// `dope-trace` so live and simulated traces agree on semantics.
fn emit_decision(
    recorder: &Recorder,
    metrics: Option<&ExecMetrics>,
    time_secs: f64,
    mechanism: String,
    trace: DecisionTrace,
    realized: Option<f64>,
) {
    let prediction_error = match (trace.predicted_throughput, realized) {
        (Some(predicted), Some(realized)) if realized > 0.0 => {
            Some((predicted - realized) / realized)
        }
        _ => None,
    };
    if let Some(m) = metrics {
        m.record_decision(trace.rationale.code(), prediction_error);
    }
    recorder.record_at(
        time_secs,
        TraceEvent::DecisionTraced {
            mechanism,
            rationale: trace.rationale,
            observed: trace.observed,
            candidates: trace.candidates,
            chosen: trace.chosen,
            predicted_throughput: trace.predicted_throughput,
            realized_throughput: realized,
            prediction_error,
        },
    );
}

/// Debug-build verification gate.
///
/// Every configuration the executive accepts — the initial one at
/// launch and each mechanism proposal that survives
/// [`Config::validate`] at a reconfiguration decision — is additionally
/// run through the `dope-verify` static analyzer in debug builds. The
/// analyzer is strictly stronger than the validator (it also rejects
/// degenerate trees such as empty nests), so a panic here means a
/// mechanism or shape produced something the first-error-wins validator
/// is blind to. Release builds compile this to nothing.
fn debug_verify_gate(stage: &str, shape: &ProgramShape, config: &Config, threads: u32) {
    #[cfg(debug_assertions)]
    {
        let report = dope_verify::analyze(shape, config, &Resources::threads(threads));
        if report.has_errors() {
            let errors: Vec<String> = report.errors().map(ToString::to_string).collect();
            panic!(
                "verification gate ({stage}): config {config} has error diagnostics:\n  {}",
                errors.join("\n  ")
            );
        }
    }
    #[cfg(not(debug_assertions))]
    {
        let _ = (stage, shape, config, threads);
    }
}

/// An in-flight partial (delta) reconfiguration: the accepted target
/// configuration, the paths being steered to a consistent point, and
/// when the drain started (for the measured pause latency).
struct PartialDrain {
    target: Config,
    changed: Vec<TaskPath>,
    started: Instant,
}

/// Traces an accepted-but-discarded reconfiguration target: a failure
/// or stop raced the drain and the epoch the target was meant for no
/// longer exists, so the proposal is retired as `superseded` instead of
/// being dropped without a trace.
fn record_superseded(recorder: &Recorder, mechanism: &str, proposal: Config) {
    recorder.record_with(|| TraceEvent::ProposalEvaluated {
        mechanism: mechanism.to_string(),
        proposal,
        verdict: Verdict::Superseded,
    });
}

/// Submits one batch of worker jobs — a full epoch or a partial
/// relaunch — wiring each body to the global and per-path suspend flags
/// and the epoch's done channel, and folding the batch into the epoch's
/// accounting maps under `generation`.
#[allow(clippy::too_many_arguments)]
fn submit_epoch_jobs(
    jobs: Vec<WorkerJob>,
    generation: u64,
    pool: &WorkerPool,
    shared: &Shared,
    path_flags: &HashMap<TaskPath, Arc<AtomicBool>>,
    window: Duration,
    done_tx: &mpsc::Sender<(TaskPath, u64, TaskOutcome)>,
    unreported: &mut HashMap<(TaskPath, u64), u32>,
    per_path_outstanding: &mut HashMap<TaskPath, usize>,
    submitted_by_path: &mut HashMap<TaskPath, usize>,
    remaining: &mut usize,
) -> Result<()> {
    for job in jobs {
        *unreported
            .entry((job.path.clone(), generation))
            .or_insert(0) += 1;
        *per_path_outstanding.entry(job.path.clone()).or_insert(0) += 1;
        *submitted_by_path.entry(job.path.clone()).or_insert(0) += 1;
        *remaining += 1;
        let monitor = shared.monitor.clone();
        let suspend = Arc::clone(&shared.suspend);
        let path_suspend = path_flags.get(&job.path).cloned().unwrap_or_default();
        let done = done_tx.clone();
        pool.try_submit(move || {
            let mut cx = LiveCx::new(&monitor, suspend, path_suspend, &job.path, job.slot, window);
            let mut body = job.body;
            // The paper's TaskExecutor (Figure 4a): re-invoke while the
            // body reports EXECUTING. The suspend directive reaches the
            // body through begin/end; the *body* decides when it has
            // steered into a globally consistent state (drained its
            // queues) and yields — the executor must not cut it short.
            //
            // Supervision: a panic anywhere in init/invoke is caught
            // here so it can be *reported* as a first-class outcome;
            // the pool's own net only sees panics this wrapper
            // cannot express (and keeps the thread alive either way).
            let result = catch_unwind(AssertUnwindSafe(|| {
                body.init();
                loop {
                    let status = body.invoke(&mut cx);
                    if status.is_terminal() {
                        break status;
                    }
                }
            }));
            let outcome = match result {
                Ok(status) => {
                    body.fini(status);
                    TaskOutcome::Completed(status)
                }
                Err(payload) => {
                    let reason = panic_reason(payload.as_ref());
                    // The executive's contract is that `fini` always
                    // runs; a `fini` that panics in turn is contained
                    // rather than allowed to mask the original reason.
                    let _ = catch_unwind(AssertUnwindSafe(|| {
                        body.fini(TaskStatus::Suspended);
                    }));
                    TaskOutcome::Failed { reason }
                }
            };
            let _ = done.send((job.path, generation, outcome));
        })?;
    }
    Ok(())
}

#[allow(clippy::too_many_arguments)]
#[allow(clippy::too_many_lines)]
fn run_control_loop(
    descriptor: &[TaskSpec],
    shape: &ProgramShape,
    initial: Config,
    mechanism: &mut dyn Mechanism,
    res: Resources,
    pool: &WorkerPool,
    shared: &Shared,
    control_period: Duration,
    window: Duration,
    policy: FailurePolicy,
    delta_enabled: bool,
    recorder: &Recorder,
    metrics: Option<&ExecMetrics>,
) -> Result<RunReport> {
    let start = Instant::now();
    let mut config = initial;
    let mut reconfigurations: u64 = 0;
    let mut rejected: u64 = 0;
    let mut history = vec![(0.0, config.clone())];
    let budget = res.threads;
    // Pause latency of a completed drain, waiting for the relaunch half
    // of its `ReconfigureEpoch` event.
    let mut pending_pause: Option<f64> = None;
    // The last explained decision, held for one control period so its
    // throughput prediction can be scored against the *next* snapshot's
    // realized bottleneck throughput before the `DecisionTraced` event
    // goes out.
    let mut pending_decision: Option<(f64, String, DecisionTrace)> = None;
    let audit_decisions = recorder.is_enabled() || metrics.is_some();
    // Failure accounting for the honest RunReport.
    let mut task_failures: u64 = 0;
    let mut task_restarts: u64 = 0;
    let mut lost_jobs: u64 = 0;
    let mut restarts_used: u64 = 0;
    let mut verdict = FailureVerdict::Clean;

    'epochs: loop {
        // Launch the epoch.
        let relaunch_started = Instant::now();
        let epoch = instantiate(descriptor, &config)?;
        shared
            .monitor
            .install_epoch(epoch.load_cbs, epoch.extents.clone());
        shared.suspend.store(false, Ordering::Release);

        // One suspend flag per live path: a partial (delta) drain flips
        // only the changed paths' flags, while stop and full drains keep
        // using the global flag. Workers suspend on the union.
        let mut path_flags: HashMap<TaskPath, Arc<AtomicBool>> = HashMap::new();
        for job in &epoch.jobs {
            path_flags.entry(job.path.clone()).or_default();
        }

        // dope-lint: allow(DL005): depth is bounded by the epoch's job count — every sender is one submitted job (plus the executive's handle kept for partial relaunches), and the epoch drains before the next one launches
        let (done_tx, done_rx) = mpsc::channel::<(TaskPath, u64, TaskOutcome)>();
        // Replicas submitted per (path, generation), decremented as
        // outcomes arrive: whatever is left when the epoch breaks early
        // is lost work. The generation counts partial relaunches, so a
        // relaunched path's old and new replicas stay distinct.
        let mut unreported: HashMap<(TaskPath, u64), u32> = HashMap::new();
        let mut per_path_outstanding: HashMap<TaskPath, usize> = HashMap::new();
        let mut submitted_by_path: HashMap<TaskPath, usize> = HashMap::new();
        let mut finished_by_path: HashMap<TaskPath, usize> = HashMap::new();
        let mut generation: u64 = 0;
        let mut remaining: usize = 0;
        // Finished outcomes the program needs to count as complete; a
        // partial relaunch retires the drained paths' share and adds the
        // relaunched replicas'.
        let mut expected_finishes = epoch.jobs.len();
        submit_epoch_jobs(
            epoch.jobs,
            generation,
            pool,
            shared,
            &path_flags,
            window,
            &done_tx,
            &mut unreported,
            &mut per_path_outstanding,
            &mut submitted_by_path,
            &mut remaining,
        )?;
        if let Some(pause_secs) = pending_pause.take() {
            let relaunch_secs = relaunch_started.elapsed().as_secs_f64();
            let jobs = remaining as u64;
            let paths_drained = config.paths().len() as u64;
            let config_now = &config;
            recorder.record_with(|| TraceEvent::ReconfigureEpoch {
                pause_secs,
                relaunch_secs,
                jobs,
                config: config_now.clone(),
                scope: "full".to_string(),
                paths_drained,
            });
            if let Some(m) = metrics {
                m.epochs.inc();
                m.pause.record_secs(pause_secs);
                m.relaunch.record_secs(relaunch_secs);
                m.paths_drained.record_secs(paths_drained as f64);
            }
        }

        // Monitor until the epoch ends or a reconfiguration triggers.
        let mut finished = 0usize;
        let mut failures: Vec<(TaskPath, String)> = Vec::new();
        let mut reconfig_target: Option<Config> = None;
        let mut suspend_started: Option<Instant> = None;
        let mut partial: Option<PartialDrain> = None;
        // Control ticks run off an absolute deadline: driving the timer
        // from `recv_timeout` alone reset it on every completion, so a
        // flood of completions starved the mechanism of consults.
        let mut next_tick = Instant::now() + control_period;
        // The executive's own `done_tx` (kept for partial relaunches)
        // prevents the channel from ever disconnecting, so vanished jobs
        // are detected via pool quiescence instead — two consecutive
        // idle timeouts with every submitted job parked.
        let mut pool_idle_seen = false;
        // A pending partial keeps the loop alive past `remaining == 0`:
        // when the drained paths were the only ones left, the boundary
        // check below still has to run to splice in the relaunch.
        while remaining > 0 || partial.is_some() {
            let stopping = shared.stop.load(Ordering::Acquire);
            if stopping {
                shared.suspend.store(true, Ordering::Release);
            }
            if Instant::now() >= next_tick {
                next_tick = Instant::now() + control_period;
                let draining =
                    reconfig_target.is_some() || !failures.is_empty() || partial.is_some();
                if !stopping && !draining {
                    let snap = shared.monitor.snapshot();
                    recorder.record_with(|| TraceEvent::SnapshotTaken {
                        snapshot: snap.clone(),
                    });
                    // Score the previous control period's decision
                    // against what this snapshot actually realized,
                    // then emit it.
                    if let Some((at, mech, trace)) = pending_decision.take() {
                        let realized = realized_throughput(&snap);
                        emit_decision(recorder, metrics, at, mech, trace, realized);
                    }
                    let proposal = mechanism.reconfigure(&snap, &config, shape, &res);
                    // Hold the mechanism's explanation — hold decisions
                    // included — for scoring at the next snapshot.
                    if audit_decisions {
                        if let Some(trace) = mechanism.explain() {
                            pending_decision = Some((
                                recorder.elapsed_secs(),
                                mechanism.name().to_string(),
                                trace,
                            ));
                        }
                    }
                    if let Some(proposal) = proposal {
                        if proposal == config {
                            recorder.record_with(|| TraceEvent::ProposalEvaluated {
                                mechanism: mechanism.name().to_string(),
                                proposal: proposal.clone(),
                                verdict: Verdict::Unchanged,
                            });
                            if let Some(m) = metrics {
                                m.proposals_unchanged.inc();
                            }
                        } else {
                            match proposal.validate(shape, budget) {
                                Ok(()) => {
                                    debug_verify_gate("reconfigure", shape, &proposal, budget);
                                    recorder.record_with(|| TraceEvent::ProposalEvaluated {
                                        mechanism: mechanism.name().to_string(),
                                        proposal: proposal.clone(),
                                        verdict: Verdict::Accepted,
                                    });
                                    if let Some(m) = metrics {
                                        m.proposals_accepted.inc();
                                    }
                                    let delta = if delta_enabled {
                                        config.delta_paths(&proposal)
                                    } else {
                                        None
                                    };
                                    if let Some(changed) = delta {
                                        // Steer only the changed paths to
                                        // a consistent point; every other
                                        // replica keeps running across
                                        // the boundary.
                                        for path in &changed {
                                            if let Some(flag) = path_flags.get(path) {
                                                flag.store(true, Ordering::Release);
                                            }
                                        }
                                        partial = Some(PartialDrain {
                                            target: proposal,
                                            changed,
                                            started: Instant::now(),
                                        });
                                    } else {
                                        reconfig_target = Some(proposal);
                                        suspend_started = Some(Instant::now());
                                        shared.suspend.store(true, Ordering::Release);
                                    }
                                }
                                Err(err) => {
                                    rejected += 1;
                                    recorder.record_with(|| TraceEvent::ProposalEvaluated {
                                        mechanism: mechanism.name().to_string(),
                                        proposal: proposal.clone(),
                                        verdict: Verdict::Rejected { code: err.code() },
                                    });
                                    if let Some(m) = metrics {
                                        m.proposals_rejected.inc();
                                    }
                                }
                            }
                        }
                    }
                }
            }
            // Partial boundary: every changed path's replicas have
            // reported while the rest of the nest keeps running. Splice
            // the relaunched replicas into the live epoch. A stop takes
            // precedence: the global drain is already in flight and the
            // target is retired as superseded at epoch end.
            if !stopping {
                if let Some(p) = partial.take() {
                    let drained_now = p
                        .changed
                        .iter()
                        .all(|path| per_path_outstanding.get(path).copied().unwrap_or(0) == 0);
                    if drained_now {
                        let PartialDrain {
                            target,
                            changed,
                            started,
                        } = p;
                        let pause_secs = started.elapsed().as_secs_f64();
                        let relaunch_started = Instant::now();
                        config = target;
                        let relaunched = instantiate_paths(descriptor, &config, &changed)?;
                        // The drained paths' share of the completion
                        // target is retired with them; the relaunched
                        // replicas take their place.
                        for path in &changed {
                            expected_finishes -= submitted_by_path.remove(path).unwrap_or(0);
                            finished -= finished_by_path.remove(path).unwrap_or(0);
                        }
                        expected_finishes += relaunched.jobs.len();
                        shared.monitor.merge_epoch_paths(
                            relaunched.load_cbs,
                            relaunched.extents,
                            &changed,
                        );
                        // Resume the relaunched paths *before* submitting
                        // so the new replicas never observe a stale
                        // suspend flag.
                        for path in &changed {
                            if let Some(flag) = path_flags.get(path) {
                                flag.store(false, Ordering::Release);
                            }
                        }
                        generation += 1;
                        submit_epoch_jobs(
                            relaunched.jobs,
                            generation,
                            pool,
                            shared,
                            &path_flags,
                            window,
                            &done_tx,
                            &mut unreported,
                            &mut per_path_outstanding,
                            &mut submitted_by_path,
                            &mut remaining,
                        )?;
                        let relaunch_secs = relaunch_started.elapsed().as_secs_f64();
                        let jobs = remaining as u64;
                        let paths_drained = changed.len() as u64;
                        let config_now = &config;
                        recorder.record_with(|| TraceEvent::ReconfigureEpoch {
                            pause_secs,
                            relaunch_secs,
                            jobs,
                            config: config_now.clone(),
                            scope: "partial".to_string(),
                            paths_drained,
                        });
                        if let Some(m) = metrics {
                            m.epochs.inc();
                            m.pause.record_secs(pause_secs);
                            m.relaunch.record_secs(relaunch_secs);
                            m.reconfig_partial.inc();
                            m.paths_drained.record_secs(paths_drained as f64);
                        }
                        reconfigurations += 1;
                        history.push((start.elapsed().as_secs_f64(), config.clone()));
                        shared.monitor.mark_reconfig();
                        mechanism.applied(&config);
                    } else {
                        partial = Some(p);
                    }
                }
            }
            match done_rx.recv_timeout(next_tick.saturating_duration_since(Instant::now())) {
                Ok((path, job_generation, outcome)) => {
                    pool_idle_seen = false;
                    remaining -= 1;
                    if let Some(left) = unreported.get_mut(&(path.clone(), job_generation)) {
                        *left = left.saturating_sub(1);
                    }
                    if let Some(out) = per_path_outstanding.get_mut(&path) {
                        *out = out.saturating_sub(1);
                    }
                    match outcome {
                        TaskOutcome::Completed(status) => {
                            if status == TaskStatus::Finished {
                                finished += 1;
                                *finished_by_path.entry(path).or_insert(0) += 1;
                            }
                        }
                        TaskOutcome::Failed { reason } => {
                            task_failures += 1;
                            shared.monitor.mark_failed(&path);
                            if let Some(m) = metrics {
                                m.task_failures.inc();
                            }
                            let event_path = path.clone();
                            let event_reason = reason.clone();
                            recorder.record_with(|| TraceEvent::TaskFailed {
                                path: event_path,
                                reason: event_reason,
                                policy: policy.kind().to_string(),
                            });
                            failures.push((path, reason));
                            // Drain the epoch so the failure policy acts
                            // at a globally consistent point. A partial
                            // drain in flight escalates to a full one:
                            // its accepted target is retired as
                            // superseded rather than dropped silently.
                            if let Some(p) = partial.take() {
                                record_superseded(recorder, mechanism.name(), p.target);
                            }
                            shared.suspend.store(true, Ordering::Release);
                        }
                    }
                }
                Err(mpsc::RecvTimeoutError::Timeout) => {
                    // Vanished-job detection: every send happens before
                    // its worker parks, so once submitted == dispatched
                    // == parks the channel holds all outcomes that will
                    // ever arrive. One more recv attempt (the next loop
                    // iteration) drains any straggler; a second idle
                    // timeout means the missing replicas are lost work.
                    let idle =
                        pool.submitted() == pool.dispatched() && pool.dispatched() == pool.parks();
                    if idle && pool_idle_seen {
                        break;
                    }
                    pool_idle_seen = idle;
                }
                Err(mpsc::RecvTimeoutError::Disconnected) => break,
            }
        }

        // Anything still unreported when the channel closed vanished
        // without sending an outcome (an escaped unwind, a worker died
        // some other way). Silently shrinking `remaining` here is how
        // work used to get lost without a trace — count every missing
        // replica as a failure and poison the verdict.
        if remaining > 0 {
            for ((path, _generation), left) in &unreported {
                for _ in 0..*left {
                    task_failures += 1;
                    lost_jobs += 1;
                    shared.monitor.mark_failed(path);
                    if let Some(m) = metrics {
                        m.task_failures.inc();
                    }
                    let reason = "worker job vanished without reporting an outcome".to_string();
                    let event_path = path.clone();
                    let event_reason = reason.clone();
                    recorder.record_with(|| TraceEvent::TaskFailed {
                        path: event_path,
                        reason: event_reason,
                        policy: policy.kind().to_string(),
                    });
                    failures.push((path.clone(), reason));
                }
            }
            verdict = verdict.worsen(FailureVerdict::LostWork);
        }

        // Epoch-end failure handling: the policy decides what the run
        // does *before* any stop or reconfiguration logic sees the
        // drained epoch.
        if !failures.is_empty() {
            match policy {
                FailurePolicy::Abort => {
                    let (path, reason) = failures.swap_remove(0);
                    return Err(Error::TaskFailed { path, reason });
                }
                FailurePolicy::Restart {
                    max_retries,
                    backoff,
                } => {
                    let needed = failures.len() as u64;
                    if restarts_used + needed > u64::from(max_retries) {
                        let (path, reason) = failures.swap_remove(0);
                        return Err(Error::TaskFailed {
                            path,
                            reason: format!("{reason} (restart budget of {max_retries} exhausted)"),
                        });
                    }
                    restarts_used += needed;
                    task_restarts += needed;
                    if let Some(m) = metrics {
                        m.task_restarts.add(needed);
                    }
                    verdict = verdict.worsen(FailureVerdict::Recovered);
                    // A restart rebuilds the epoch from the live config,
                    // so an accepted-but-unapplied proposal dies here —
                    // say so in the trace rather than dropping it.
                    if let Some(target) = reconfig_target.take() {
                        record_superseded(recorder, mechanism.name(), target);
                    }
                    if shared.stop.load(Ordering::Acquire) {
                        break 'epochs;
                    }
                    // Sleep in slices so a stop request interrupts the
                    // backoff instead of blocking shutdown through it.
                    let deadline = Instant::now() + backoff;
                    loop {
                        if shared.stop.load(Ordering::Acquire) {
                            break 'epochs;
                        }
                        let left = deadline.saturating_duration_since(Instant::now());
                        if left.is_zero() {
                            break;
                        }
                        std::thread::sleep(left.min(Duration::from_millis(5)));
                    }
                    continue 'epochs;
                }
                FailurePolicy::Degrade => {
                    // Shrink each failed task's degree of parallelism by
                    // its dead-replica count; a task with no survivors
                    // cannot be degraded, only aborted.
                    let mut dead: HashMap<TaskPath, u32> = HashMap::new();
                    for (path, _) in &failures {
                        *dead.entry(path.clone()).or_insert(0) += 1;
                    }
                    let mut degraded = config.clone();
                    for (path, count) in &dead {
                        let extent = degraded.extent_of(path).unwrap_or(0);
                        let survivors = extent.saturating_sub(*count);
                        if survivors == 0 {
                            let reason = failures
                                .iter()
                                .find(|(p, _)| p == path)
                                .map_or_else(String::new, |(_, r)| r.clone());
                            return Err(Error::TaskFailed {
                                path: path.clone(),
                                reason: format!(
                                    "all {extent} replica(s) failed; cannot degrade below one: {reason}"
                                ),
                            });
                        }
                        degraded.set_extent(path, survivors)?;
                    }
                    degraded.validate(shape, budget)?;
                    debug_verify_gate("degrade", shape, &degraded, budget);
                    config = degraded;
                    reconfigurations += 1;
                    history.push((start.elapsed().as_secs_f64(), config.clone()));
                    shared.monitor.mark_reconfig();
                    mechanism.applied(&config);
                    verdict = verdict.worsen(FailureVerdict::Degraded);
                    // The degraded config replaces whatever the
                    // mechanism had accepted; retire the stale target
                    // as superseded instead of discarding it silently.
                    if let Some(target) = reconfig_target.take() {
                        record_superseded(recorder, mechanism.name(), target);
                    }
                    if shared.stop.load(Ordering::Acquire) {
                        break 'epochs;
                    }
                    continue 'epochs;
                }
                // `FailurePolicy` is non-exhaustive: a policy this
                // executive does not know yet fails safe, exactly like
                // `Abort`.
                _ => {
                    let (path, reason) = failures.swap_remove(0);
                    return Err(Error::TaskFailed { path, reason });
                }
            }
        }

        // Epoch fully drained.
        if shared.stop.load(Ordering::Acquire) {
            // Stop wins over any accepted-but-unapplied target, partial
            // or full — retire both as superseded so the trace closes
            // the accepted proposal's story.
            if let Some(p) = partial.take() {
                record_superseded(recorder, mechanism.name(), p.target);
            }
            if let Some(target) = reconfig_target.take() {
                record_superseded(recorder, mechanism.name(), target);
            }
            break 'epochs;
        }
        // A partial drain that outran the epoch (every replica finished
        // before the boundary check applied it) degenerates into a full
        // reconfiguration: the epoch is empty anyway, so apply the
        // target on relaunch.
        if let Some(p) = partial.take() {
            suspend_started = Some(p.started);
            reconfig_target = Some(p.target);
        }
        if let Some(new_config) = reconfig_target {
            config = new_config;
            reconfigurations += 1;
            history.push((start.elapsed().as_secs_f64(), config.clone()));
            shared.monitor.mark_reconfig();
            mechanism.applied(&config);
            pending_pause =
                Some(suspend_started.map_or(0.0, |since| since.elapsed().as_secs_f64()));
            continue 'epochs;
        }
        // No reconfiguration pending: did the program finish?
        if finished == expected_finishes {
            break 'epochs;
        }
        // Mixed suspension without a target (stop raced): relaunch as-is.
    }

    // The run is over: score the last decision against a final
    // snapshot instead of dropping its outcome — every consult the
    // audit holds must reach the trace, scored when a reading exists.
    if let Some((at, mech, trace)) = pending_decision.take() {
        let realized = realized_throughput(&shared.monitor.snapshot());
        emit_decision(recorder, metrics, at, mech, trace, realized);
    }
    if recorder.is_enabled() {
        let completed = shared.monitor.queue_completed();
        recorder.record(TraceEvent::Finished {
            completed,
            reconfigurations,
            dropped_events: recorder.dropped(),
        });
    }
    Ok(RunReport {
        elapsed: start.elapsed(),
        reconfigurations,
        rejected_configs: rejected,
        final_config: config,
        config_history: history,
        task_failures,
        task_restarts,
        lost_jobs,
        failure_verdict: verdict,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use dope_core::{body_fn, TaskBody, TaskKind, TaskSpec, WorkerSlot};
    use dope_workload::WorkQueue;
    use std::sync::atomic::AtomicU64;

    /// A leaf task draining a shared queue of `n` items.
    fn drain_spec(name: &str, queue: WorkQueue<u64>, hits: Arc<AtomicU64>) -> TaskSpec {
        TaskSpec::leaf(name, TaskKind::Par, move |_slot: WorkerSlot| {
            let queue = queue.clone();
            let hits = Arc::clone(&hits);
            Box::new(body_fn(move |cx| {
                cx.begin();
                let item = queue.dequeue_timeout(Duration::from_millis(2));
                cx.end();
                match item {
                    dope_workload::DequeueOutcome::Item(_) => {
                        hits.fetch_add(1, Ordering::Relaxed);
                        TaskStatus::Executing
                    }
                    dope_workload::DequeueOutcome::Drained => TaskStatus::Finished,
                    dope_workload::DequeueOutcome::TimedOut => {
                        if cx.directive().wants_suspend() {
                            TaskStatus::Suspended
                        } else {
                            TaskStatus::Executing
                        }
                    }
                }
            })) as Box<dyn TaskBody>
        })
    }

    /// The launch gate catches degenerate programs `Config::validate`
    /// tolerates: a nest whose only alternative is empty passes the
    /// first-error-wins validator (zero tasks match zero tasks) but is
    /// rejected by the static analyzer (DV008) in debug builds.
    #[test]
    #[cfg_attr(not(debug_assertions), ignore = "gate compiles out in release builds")]
    #[should_panic(expected = "verification gate (launch)")]
    fn launch_gate_rejects_empty_nest() {
        let spec = TaskSpec::nest("hollow", TaskKind::Par, |_replica: u32| Vec::new());
        let _ = Dope::builder(Goal::MaxThroughput { threads: 4 }).launch(vec![spec]);
    }

    /// The reconfiguration gate re-analyzes accepted proposals. A
    /// well-formed static mechanism must sail through it (the run below
    /// applies one reconfiguration, so the gate executes).
    #[test]
    fn reconfigure_gate_accepts_valid_proposals() {
        let queue = WorkQueue::new();
        for i in 0..2000u64 {
            queue.enqueue(i).unwrap();
        }
        queue.close();
        let hits = Arc::new(AtomicU64::new(0));
        let spec = drain_spec("drain", queue, Arc::clone(&hits));
        let pinned = Config::new(vec![dope_core::TaskConfig::leaf("drain", 2)]);
        let dope = Dope::builder(Goal::MaxThroughput { threads: 4 })
            .mechanism(Box::new(StaticMechanism::new(pinned.clone())))
            .control_period(Duration::from_millis(5))
            .launch(vec![spec])
            .unwrap();
        let report = dope.wait().unwrap();
        assert_eq!(hits.load(Ordering::Relaxed), 2000);
        assert_eq!(report.final_config, pinned);
    }

    /// A recorded run captures the whole decision loop: launch, the
    /// accepted proposal, the reconfiguration epoch with its measured
    /// pause/relaunch latencies, and the terminal summary.
    #[test]
    fn attached_recorder_captures_the_decision_loop() {
        let queue = WorkQueue::new();
        for i in 0..200u64 {
            queue.enqueue(i).unwrap();
        }
        queue.close();
        let hits = Arc::new(AtomicU64::new(0));
        // Each item takes ~1 ms so the run outlives several control
        // periods and the mechanism actually gets consulted.
        let q = queue.clone();
        let h = Arc::clone(&hits);
        let spec = TaskSpec::leaf(
            "drain",
            TaskKind::Par,
            move |_slot: dope_core::WorkerSlot| {
                let queue = q.clone();
                let hits = Arc::clone(&h);
                Box::new(dope_core::body_fn(move |cx| {
                    cx.begin();
                    let item = queue.dequeue_timeout(Duration::from_millis(2));
                    cx.end();
                    match item {
                        dope_workload::DequeueOutcome::Item(_) => {
                            std::thread::sleep(Duration::from_millis(1));
                            hits.fetch_add(1, Ordering::Relaxed);
                            // Each item is a consistent point: honoring
                            // the directive here lets the drain finish
                            // while the queue still holds work, which is
                            // what makes the delta path observable.
                            if cx.directive().wants_suspend() {
                                TaskStatus::Suspended
                            } else {
                                TaskStatus::Executing
                            }
                        }
                        dope_workload::DequeueOutcome::Drained => TaskStatus::Finished,
                        dope_workload::DequeueOutcome::TimedOut => {
                            if cx.directive().wants_suspend() {
                                TaskStatus::Suspended
                            } else {
                                TaskStatus::Executing
                            }
                        }
                    }
                })) as Box<dyn dope_core::TaskBody>
            },
        );
        let pinned = Config::new(vec![dope_core::TaskConfig::leaf("drain", 2)]);
        // Starts on the executive's even split, then proposes the pinned
        // config at the first decision point — guaranteeing exactly the
        // reconfiguration this test wants to see traced.
        struct OneShot {
            target: Config,
        }
        impl Mechanism for OneShot {
            fn name(&self) -> &'static str {
                "OneShot"
            }
            fn reconfigure(
                &mut self,
                _snap: &dope_core::MonitorSnapshot,
                _current: &Config,
                _shape: &ProgramShape,
                _res: &Resources,
            ) -> Option<Config> {
                Some(self.target.clone())
            }
        }
        let recorder = dope_trace::Recorder::bounded(4096);
        let dope = Dope::builder(Goal::MaxThroughput { threads: 4 })
            .mechanism(Box::new(OneShot {
                target: pinned.clone(),
            }))
            .control_period(Duration::from_millis(5))
            .recorder(recorder.clone())
            .launch(vec![spec])
            .unwrap();
        let report = dope.wait().unwrap();
        assert!(report.reconfigurations >= 1);

        let records = recorder.records();
        let kinds: Vec<&str> = records.iter().map(|r| r.event.kind()).collect();
        assert_eq!(kinds.first(), Some(&"Launched"));
        assert_eq!(kinds.last(), Some(&"Finished"));
        assert!(kinds.contains(&"SnapshotTaken"));
        assert!(kinds.contains(&"TaskStatsSample"));
        assert!(kinds.contains(&"ProposalEvaluated"));
        assert!(kinds.contains(&"ReconfigureEpoch"));
        let epoch = records
            .iter()
            .find_map(|r| match &r.event {
                TraceEvent::ReconfigureEpoch {
                    pause_secs,
                    relaunch_secs,
                    jobs,
                    config,
                    scope,
                    paths_drained,
                } => Some((
                    *pause_secs,
                    *relaunch_secs,
                    *jobs,
                    config.clone(),
                    scope.clone(),
                    *paths_drained,
                )),
                _ => None,
            })
            .expect("a ReconfigureEpoch event");
        assert!(epoch.0 >= 0.0 && epoch.1 >= 0.0);
        assert_eq!(epoch.2, 2, "new epoch runs the pinned extent-2 jobs");
        assert_eq!(epoch.3, pinned);
        assert_eq!(
            epoch.4, "partial",
            "a single-leaf extent change takes the delta path"
        );
        assert_eq!(epoch.5, 1, "exactly the changed path drained");
    }

    /// A clean run reports a clean verdict and zero failure counters —
    /// the honest-report fields must not cry wolf.
    #[test]
    fn clean_run_reports_clean_verdict() {
        let queue = WorkQueue::new();
        for i in 0..100u64 {
            queue.enqueue(i).unwrap();
        }
        queue.close();
        let hits = Arc::new(AtomicU64::new(0));
        let spec = drain_spec("drain", queue, Arc::clone(&hits));
        let dope = Dope::builder(Goal::MaxThroughput { threads: 2 })
            .launch(vec![spec])
            .unwrap();
        let report = dope.wait().unwrap();
        assert_eq!(report.task_failures, 0);
        assert_eq!(report.task_restarts, 0);
        assert_eq!(report.lost_jobs, 0);
        assert_eq!(report.failure_verdict, FailureVerdict::Clean);
    }

    /// If the control thread itself dies, `wait` must surface the panic
    /// payload — "the executive died" without a *why* is undebuggable.
    #[test]
    fn wait_surfaces_control_thread_panic_payload() {
        struct Exploding;
        impl Mechanism for Exploding {
            fn name(&self) -> &'static str {
                "Exploding"
            }
            fn reconfigure(
                &mut self,
                _snap: &dope_core::MonitorSnapshot,
                _current: &Config,
                _shape: &ProgramShape,
                _res: &Resources,
            ) -> Option<Config> {
                panic!("mechanism exploded");
            }
        }
        // A finite but slow drain: the run outlives the first control
        // tick (which detonates the mechanism), yet the workers finish
        // on their own so the pool can be torn down afterwards.
        let queue = WorkQueue::new();
        for i in 0..100u64 {
            queue.enqueue(i).unwrap();
        }
        queue.close();
        let hits = Arc::new(AtomicU64::new(0));
        let q = queue.clone();
        let h = Arc::clone(&hits);
        let spec = TaskSpec::leaf("drain", TaskKind::Par, move |_slot: WorkerSlot| {
            let queue = q.clone();
            let hits = Arc::clone(&h);
            Box::new(body_fn(move |cx| {
                cx.begin();
                let item = queue.dequeue_timeout(Duration::from_millis(2));
                cx.end();
                match item {
                    dope_workload::DequeueOutcome::Item(_) => {
                        std::thread::sleep(Duration::from_millis(1));
                        hits.fetch_add(1, Ordering::Relaxed);
                        TaskStatus::Executing
                    }
                    dope_workload::DequeueOutcome::Drained => TaskStatus::Finished,
                    dope_workload::DequeueOutcome::TimedOut => TaskStatus::Executing,
                }
            })) as Box<dyn TaskBody>
        });
        let dope = Dope::builder(Goal::MaxThroughput { threads: 2 })
            .mechanism(Box::new(Exploding))
            .control_period(Duration::from_millis(5))
            .launch(vec![spec])
            .unwrap();
        let err = dope.wait().unwrap_err();
        let text = err.to_string();
        assert!(text.contains("executive control thread panicked"), "{text}");
        assert!(text.contains("mechanism exploded"), "{text}");
    }

    #[test]
    fn runs_to_completion_and_counts_work() {
        let queue = WorkQueue::new();
        for i in 0..500u64 {
            queue.enqueue(i).unwrap();
        }
        queue.close();
        let hits = Arc::new(AtomicU64::new(0));
        let spec = drain_spec("drain", queue, Arc::clone(&hits));
        let dope = Dope::builder(Goal::MaxThroughput { threads: 4 })
            .launch(vec![spec])
            .unwrap();
        let report = dope.wait().unwrap();
        assert_eq!(hits.load(Ordering::Relaxed), 500);
        assert_eq!(report.reconfigurations, 0);
    }

    #[test]
    fn stop_interrupts_long_run() {
        let queue: WorkQueue<u64> = WorkQueue::new();
        // Never closed: tasks would run forever.
        let hits = Arc::new(AtomicU64::new(0));
        let spec = drain_spec("drain", queue, Arc::clone(&hits));
        let dope = Dope::builder(Goal::MaxThroughput { threads: 2 })
            .control_period(Duration::from_millis(5))
            .launch(vec![spec])
            .unwrap();
        std::thread::sleep(Duration::from_millis(30));
        dope.stop();
        let report = dope.wait().unwrap();
        assert!(report.elapsed >= Duration::from_millis(30));
    }

    /// A degenerate admission policy must die at `launch`, not at the
    /// first offer: the builder validates and surfaces `DV017`.
    #[test]
    fn degenerate_admission_policy_fails_launch() {
        let queue = WorkQueue::new();
        queue.close();
        let hits = Arc::new(AtomicU64::new(0));
        let spec = drain_spec("drain", queue, Arc::clone(&hits));
        let err = Dope::builder(Goal::MaxThroughput { threads: 2 })
            .admission(AdmissionPolicy::Shed { high_water: 0 })
            .launch(vec![spec])
            .unwrap_err();
        assert_eq!(err.code().to_string(), "DV017");
    }

    /// End-to-end admission wiring: producers offer through a shedding
    /// `AdmissionQueue`, workers drain it, and the builder-installed
    /// probe makes the pressure visible — in the monitor's snapshots
    /// and as `AdmissionDecision` events in the trace.
    #[test]
    fn admission_gate_pressure_reaches_snapshots_and_trace() {
        let gate: dope_workload::AdmissionQueue<u64> =
            dope_workload::AdmissionQueue::new(AdmissionPolicy::Shed { high_water: 4 });
        let hits = Arc::new(AtomicU64::new(0));
        let q = gate.clone();
        let h = Arc::clone(&hits);
        let spec = TaskSpec::leaf("serve", TaskKind::Par, move |_slot: WorkerSlot| {
            let gate = q.clone();
            let hits = Arc::clone(&h);
            Box::new(body_fn(move |cx| {
                cx.begin();
                let item = gate.take(Duration::from_millis(2));
                cx.end();
                match item {
                    dope_workload::DequeueOutcome::Item(_) => {
                        std::thread::sleep(Duration::from_millis(1));
                        hits.fetch_add(1, Ordering::Relaxed);
                        TaskStatus::Executing
                    }
                    dope_workload::DequeueOutcome::Drained => TaskStatus::Finished,
                    dope_workload::DequeueOutcome::TimedOut => {
                        if cx.directive().wants_suspend() {
                            TaskStatus::Suspended
                        } else {
                            TaskStatus::Executing
                        }
                    }
                }
            })) as Box<dyn TaskBody>
        });
        let recorder = dope_trace::Recorder::bounded(4096);
        let dope = Dope::builder(Goal::MaxThroughput { threads: 2 })
            .admission(gate.policy())
            .admission_probe(gate.stats_probe())
            .control_period(Duration::from_millis(5))
            .recorder(recorder.clone())
            .launch(vec![spec])
            .unwrap();
        // An offer storm against slow workers: the watermark guarantees
        // sheds, the drain guarantees completions.
        for i in 0..400u64 {
            let _ = gate.offer(i);
        }
        // Let at least one pressured control period elapse, then close
        // the gate so the epoch drains.
        std::thread::sleep(Duration::from_millis(40));
        gate.close();
        dope.wait().unwrap();

        let stats = gate.stats();
        assert_eq!(stats.offered, 400);
        assert!(stats.shed_high_water > 0, "the storm must overflow");
        assert_eq!(stats.offered, stats.admitted + stats.shed_high_water);
        assert_eq!(hits.load(Ordering::Relaxed), stats.admitted);
        let decision = recorder
            .records()
            .into_iter()
            .find_map(|r| match r.event {
                TraceEvent::AdmissionDecision {
                    policy, verdict, ..
                } => Some((policy, verdict)),
                _ => None,
            })
            .expect("a pressured period must emit an AdmissionDecision");
        assert_eq!(decision.0, "shed");
        assert_eq!(decision.1, "shed");
    }

    #[test]
    fn static_mechanism_reconfigures_once_then_settles() {
        let queue = WorkQueue::new();
        for i in 0..2000u64 {
            queue.enqueue(i).unwrap();
        }
        queue.close();
        let hits = Arc::new(AtomicU64::new(0));
        let spec = drain_spec("drain", queue, Arc::clone(&hits));
        // The mechanism pins extent 3, while the initial even split uses 4.
        let target = Config::new(vec![dope_core::TaskConfig::leaf("drain", 3)]);
        let mut mech = StaticMechanism::new(target.clone());
        // Force a different initial config.
        let shape = ProgramShape::new(vec![dope_core::ShapeNode::leaf("drain", TaskKind::Par)]);
        let _ = &mut mech;
        let _ = shape;
        let dope = Dope::builder(Goal::MaxThroughput { threads: 4 })
            .mechanism(Box::new(mech))
            .control_period(Duration::from_millis(5))
            .launch(vec![spec])
            .unwrap();
        let report = dope.wait().unwrap();
        assert_eq!(hits.load(Ordering::Relaxed), 2000);
        assert_eq!(report.final_config, target);
    }
}
