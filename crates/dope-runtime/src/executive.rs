//! The DoPE-Executive: launch, monitor, reconfigure, finish.

use crate::instance::{instantiate, LiveCx};
use crate::monitor::Monitor;
use crate::pool::WorkerPool;
use dope_core::{
    Config, Error, Goal, Mechanism, ProgramShape, QueueStats, Resources, Result, StaticMechanism,
    TaskPath, TaskSpec, TaskStatus,
};
use dope_metrics::{names, Counter, Histogram, MetricsRegistry};
use dope_platform::{FeatureObserver, FeatureRegistry};
use dope_trace::{Recorder, TraceEvent, Verdict};
use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{mpsc, Arc};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Report returned when a DoPE-managed application finishes.
#[derive(Debug, Clone)]
pub struct RunReport {
    /// Wall-clock duration of the run.
    pub elapsed: Duration,
    /// Number of applied reconfigurations.
    pub reconfigurations: u64,
    /// Mechanism proposals rejected by validation.
    pub rejected_configs: u64,
    /// Configuration in force at the end.
    pub final_config: Config,
    /// `(elapsed_secs, config)` for every applied configuration, the
    /// initial one included.
    pub config_history: Vec<(f64, Config)>,
}

/// Builder for a [`Dope`] executive (the paper's `DoPE::create`).
pub struct DopeBuilder {
    goal: Goal,
    mechanism: Option<Box<dyn Mechanism>>,
    control_period: Duration,
    throughput_window: Duration,
    features: FeatureRegistry,
    queue_probe: Option<Arc<dyn Fn() -> QueueStats + Send + Sync>>,
    pool_threads: Option<u32>,
    recorder: Recorder,
    metrics: Option<MetricsRegistry>,
}

impl std::fmt::Debug for DopeBuilder {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DopeBuilder")
            .field("goal", &self.goal)
            .field("control_period", &self.control_period)
            .finish_non_exhaustive()
    }
}

impl DopeBuilder {
    fn new(goal: Goal) -> Self {
        DopeBuilder {
            goal,
            mechanism: None,
            control_period: Duration::from_millis(100),
            throughput_window: Duration::from_secs(5),
            features: FeatureRegistry::new(),
            queue_probe: None,
            pool_threads: None,
            recorder: Recorder::disabled(),
            metrics: None,
        }
    }

    /// Overrides the mechanism (otherwise the executive runs a static even
    /// split — link `dope-mechanisms` and pass `for_goal(goal)` for the
    /// adaptive defaults).
    #[must_use]
    pub fn mechanism(mut self, mechanism: Box<dyn Mechanism>) -> Self {
        self.mechanism = Some(mechanism);
        self
    }

    /// How often the executive consults the mechanism.
    #[must_use]
    pub fn control_period(mut self, period: Duration) -> Self {
        self.control_period = period;
        self
    }

    /// The sliding window for throughput measurements.
    #[must_use]
    pub fn throughput_window(mut self, window: Duration) -> Self {
        self.throughput_window = window;
        self
    }

    /// Installs a platform feature registry (paper Figure 9); register a
    /// `"SystemPower"` feature to feed power-aware mechanisms.
    #[must_use]
    pub fn features(mut self, features: FeatureRegistry) -> Self {
        self.features = features;
        self
    }

    /// Installs the work-queue probe behind `snapshot().queue`.
    #[must_use]
    pub fn queue_probe<F>(mut self, probe: F) -> Self
    where
        F: Fn() -> QueueStats + Send + Sync + 'static,
    {
        self.queue_probe = Some(Arc::new(probe));
        self
    }

    /// Overrides the worker-pool size (defaults to the goal's thread
    /// budget). Values above the budget let baselines oversubscribe.
    #[must_use]
    pub fn pool_threads(mut self, threads: u32) -> Self {
        self.pool_threads = Some(threads);
        self
    }

    /// Attaches a flight recorder (see `dope-trace`): the executive then
    /// records `Launched`, `SnapshotTaken`, `ProposalEvaluated`,
    /// `ReconfigureEpoch` (with measured pause/relaunch latencies), and
    /// `Finished` events; the monitor records per-task and queue samples;
    /// and platform feature reads record `FeatureRead`. A
    /// [`Recorder::disabled`] handle (the default) keeps every hook a
    /// no-op.
    #[must_use]
    pub fn recorder(mut self, recorder: Recorder) -> Self {
        self.recorder = recorder;
        self
    }

    /// Attaches a live metrics registry (see `dope-metrics`): the
    /// monitor then exports per-task `dope_task_exec_seconds` latency
    /// histograms, queue gauges, and its self-measured overhead; the
    /// executive exports `dope_reconfigure_epochs_total`, measured
    /// pause/relaunch latency histograms, and per-verdict proposal
    /// counts; the pool exports dispatch/park counters; and platform
    /// feature reads mirror into the `dope_power_watts` gauge. Serve the
    /// same registry with `dope_metrics::MetricsServer` to scrape the
    /// run live, or dump `registry.render()` at the end.
    #[must_use]
    pub fn metrics(mut self, registry: MetricsRegistry) -> Self {
        self.metrics = Some(registry);
        self
    }

    /// Launches the application described by `descriptor` under the DoPE
    /// run-time system.
    ///
    /// # Errors
    ///
    /// Returns an error if the initial configuration fails validation or
    /// the descriptor cannot be instantiated.
    pub fn launch(self, descriptor: Vec<TaskSpec>) -> Result<Dope> {
        Dope::launch(self, descriptor)
    }
}

/// Shared executive state.
struct Shared {
    suspend: Arc<AtomicBool>,
    stop: AtomicBool,
    monitor: Monitor,
}

/// The Degree of Parallelism Executive.
///
/// See the [crate docs](crate) for an end-to-end example.
pub struct Dope {
    control: Option<JoinHandle<Result<RunReport>>>,
    shared: Arc<Shared>,
}

impl std::fmt::Debug for Dope {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Dope").finish_non_exhaustive()
    }
}

impl Dope {
    /// Starts building an executive for `goal`.
    #[must_use]
    pub fn builder(goal: Goal) -> DopeBuilder {
        DopeBuilder::new(goal)
    }

    /// The live monitor (snapshots, feature registry).
    #[must_use]
    pub fn monitor(&self) -> Monitor {
        self.shared.monitor.clone()
    }

    /// Requests an orderly early stop: tasks are suspended and the run
    /// report is produced.
    pub fn stop(&self) {
        self.shared.stop.store(true, Ordering::Release);
        self.shared.suspend.store(true, Ordering::Release);
    }

    /// Waits for the application to finish (the paper's `DoPE::destroy`
    /// waits for registered tasks to end).
    ///
    /// # Errors
    ///
    /// Propagates launch-time validation errors from reconfigurations.
    pub fn wait(mut self) -> Result<RunReport> {
        let handle = self.control.take().expect("wait called once");
        handle
            .join()
            .map_err(|_| Error::Usage("executive control thread panicked".to_string()))?
    }

    fn launch(builder: DopeBuilder, descriptor: Vec<TaskSpec>) -> Result<Dope> {
        let goal = builder.goal;
        let budget = goal.threads().max(1);
        let shape = ProgramShape::of_specs(&descriptor);
        let res = Resources {
            threads: budget,
            power_budget_watts: goal.power_budget_watts(),
            peak_power_watts: None,
        };

        let mut mechanism: Box<dyn Mechanism> = builder.mechanism.unwrap_or_else(|| {
            Box::new(StaticMechanism::new(Config::even(&shape, budget)).named("Static-Even"))
        });

        let initial = mechanism
            .initial(&shape, &res)
            .unwrap_or_else(|| Config::even(&shape, budget));
        let launch_budget = builder.pool_threads.unwrap_or(budget).max(budget);
        initial.validate(&shape, launch_budget)?;
        debug_verify_gate("launch", &shape, &initial, launch_budget);

        let recorder = builder.recorder;
        recorder.record_with(|| TraceEvent::Launched {
            mechanism: mechanism.name().to_string(),
            goal: goal.to_string(),
            threads: budget,
            shape: shape.clone(),
            config: initial.clone(),
        });

        let monitor = Monitor::new(builder.throughput_window, 0.25, builder.features.clone());
        if let Some(probe) = &builder.queue_probe {
            let probe = Arc::clone(probe);
            monitor.set_queue_probe(move || probe());
        }
        if recorder.is_enabled() {
            monitor.set_recorder(recorder.clone());
        }
        let exec_metrics = builder.metrics.as_ref().map(|registry| {
            monitor.set_metrics(registry.clone());
            ExecMetrics::new(registry)
        });
        // The feature registry has a single observer slot, so the
        // flight-recorder hook and the platform metrics mirror compose
        // into one closure.
        let mut observers: Vec<FeatureObserver> = Vec::new();
        if recorder.is_enabled() {
            let feature_recorder = recorder.clone();
            observers.push(Arc::new(move |feature: &str, value: f64| {
                feature_recorder.record(TraceEvent::FeatureRead {
                    feature: feature.to_string(),
                    value,
                });
            }));
        }
        if let Some(registry) = &builder.metrics {
            observers.push(dope_platform::metrics_observer(registry));
        }
        if !observers.is_empty() {
            builder
                .features
                .set_observer(Some(Arc::new(move |feature: &str, value: f64| {
                    for observer in &observers {
                        observer(feature, value);
                    }
                })));
        }

        let shared = Arc::new(Shared {
            suspend: Arc::new(AtomicBool::new(false)),
            stop: AtomicBool::new(false),
            monitor: monitor.clone(),
        });

        let pool = WorkerPool::new(builder.pool_threads.unwrap_or(budget).max(1));
        if let Some(registry) = &builder.metrics {
            pool.register_metrics(registry);
        }
        let control_period = builder.control_period;
        let window = builder.throughput_window;
        let shared_for_thread = Arc::clone(&shared);

        let control = std::thread::Builder::new()
            .name("dope-executive".to_string())
            .spawn(move || {
                run_control_loop(
                    &descriptor,
                    &shape,
                    initial,
                    mechanism.as_mut(),
                    res,
                    &pool,
                    &shared_for_thread,
                    control_period,
                    window,
                    &recorder,
                    exec_metrics.as_ref(),
                )
            })
            .expect("spawning the executive thread");

        Ok(Dope {
            control: Some(control),
            shared,
        })
    }
}

/// Registry handles for the executive's own metric series.
struct ExecMetrics {
    epochs: Arc<Counter>,
    pause: Arc<Histogram>,
    relaunch: Arc<Histogram>,
    proposals_accepted: Arc<Counter>,
    proposals_unchanged: Arc<Counter>,
    proposals_rejected: Arc<Counter>,
}

impl ExecMetrics {
    fn new(registry: &MetricsRegistry) -> Self {
        let proposals = |verdict: &str| {
            registry.counter_with_labels(
                names::PROPOSALS_TOTAL,
                "Mechanism proposals evaluated, by verdict",
                &[("verdict", verdict)],
            )
        };
        ExecMetrics {
            epochs: registry.counter(
                names::RECONFIGURE_EPOCHS_TOTAL,
                "Completed reconfiguration epochs",
            ),
            pause: registry.histogram(
                names::RECONFIGURE_PAUSE_SECONDS,
                "Measured suspend-and-drain latency per reconfiguration",
            ),
            relaunch: registry.histogram(
                names::RECONFIGURE_RELAUNCH_SECONDS,
                "Measured relaunch latency per reconfiguration",
            ),
            proposals_accepted: proposals("accepted"),
            proposals_unchanged: proposals("unchanged"),
            proposals_rejected: proposals("rejected"),
        }
    }
}

/// Debug-build verification gate.
///
/// Every configuration the executive accepts — the initial one at
/// launch and each mechanism proposal that survives
/// [`Config::validate`] at a reconfiguration decision — is additionally
/// run through the `dope-verify` static analyzer in debug builds. The
/// analyzer is strictly stronger than the validator (it also rejects
/// degenerate trees such as empty nests), so a panic here means a
/// mechanism or shape produced something the first-error-wins validator
/// is blind to. Release builds compile this to nothing.
fn debug_verify_gate(stage: &str, shape: &ProgramShape, config: &Config, threads: u32) {
    #[cfg(debug_assertions)]
    {
        let report = dope_verify::analyze(shape, config, &Resources::threads(threads));
        if report.has_errors() {
            let errors: Vec<String> = report.errors().map(ToString::to_string).collect();
            panic!(
                "verification gate ({stage}): config {config} has error diagnostics:\n  {}",
                errors.join("\n  ")
            );
        }
    }
    #[cfg(not(debug_assertions))]
    {
        let _ = (stage, shape, config, threads);
    }
}

#[allow(clippy::too_many_arguments)]
fn run_control_loop(
    descriptor: &[TaskSpec],
    shape: &ProgramShape,
    initial: Config,
    mechanism: &mut dyn Mechanism,
    res: Resources,
    pool: &WorkerPool,
    shared: &Shared,
    control_period: Duration,
    window: Duration,
    recorder: &Recorder,
    metrics: Option<&ExecMetrics>,
) -> Result<RunReport> {
    let start = Instant::now();
    let mut config = initial;
    let mut reconfigurations: u64 = 0;
    let mut rejected: u64 = 0;
    let mut history = vec![(0.0, config.clone())];
    let budget = res.threads;
    // Pause latency of a completed drain, waiting for the relaunch half
    // of its `ReconfigureEpoch` event.
    let mut pending_pause: Option<f64> = None;

    'epochs: loop {
        // Launch the epoch.
        let relaunch_started = Instant::now();
        let epoch = instantiate(descriptor, &config)?;
        shared
            .monitor
            .install_epoch(epoch.load_cbs, epoch.extents.clone());
        shared.suspend.store(false, Ordering::Release);
        let suspend = Arc::clone(&shared.suspend);

        let (done_tx, done_rx) = mpsc::channel::<(TaskPath, TaskStatus)>();
        let outstanding = epoch.jobs.len();
        let statuses: Arc<Mutex<HashMap<TaskPath, TaskStatus>>> =
            Arc::new(Mutex::new(HashMap::new()));
        for job in epoch.jobs {
            let monitor = shared.monitor.clone();
            let suspend = Arc::clone(&suspend);
            let done = done_tx.clone();
            pool.submit(move || {
                let mut cx = LiveCx::new(&monitor, suspend, &job.path, job.slot, window);
                let mut body = job.body;
                body.init();
                // The paper's TaskExecutor (Figure 4a): re-invoke while the
                // body reports EXECUTING. The suspend directive reaches the
                // body through begin/end; the *body* decides when it has
                // steered into a globally consistent state (drained its
                // queues) and yields — the executor must not cut it short.
                let status = loop {
                    let status = body.invoke(&mut cx);
                    if status.is_terminal() {
                        break status;
                    }
                };
                body.fini(status);
                let _ = done.send((job.path, status));
            });
        }
        drop(done_tx);
        if let Some(pause_secs) = pending_pause.take() {
            let relaunch_secs = relaunch_started.elapsed().as_secs_f64();
            let jobs = outstanding as u64;
            let config_now = &config;
            recorder.record_with(|| TraceEvent::ReconfigureEpoch {
                pause_secs,
                relaunch_secs,
                jobs,
                config: config_now.clone(),
            });
            if let Some(m) = metrics {
                m.epochs.inc();
                m.pause.record_secs(pause_secs);
                m.relaunch.record_secs(relaunch_secs);
            }
        }

        // Monitor until the epoch ends or a reconfiguration triggers.
        let mut remaining = outstanding;
        let mut reconfig_target: Option<Config> = None;
        let mut suspend_started: Option<Instant> = None;
        while remaining > 0 {
            match done_rx.recv_timeout(control_period) {
                Ok((path, status)) => {
                    statuses.lock().insert(path, status);
                    remaining -= 1;
                }
                Err(mpsc::RecvTimeoutError::Timeout) => {
                    if shared.stop.load(Ordering::Acquire) {
                        shared.suspend.store(true, Ordering::Release);
                        continue;
                    }
                    if reconfig_target.is_some() {
                        continue; // already draining
                    }
                    let snap = shared.monitor.snapshot();
                    recorder.record_with(|| TraceEvent::SnapshotTaken {
                        snapshot: snap.clone(),
                    });
                    if let Some(proposal) = mechanism.reconfigure(&snap, &config, shape, &res) {
                        if proposal == config {
                            recorder.record_with(|| TraceEvent::ProposalEvaluated {
                                mechanism: mechanism.name().to_string(),
                                proposal: proposal.clone(),
                                verdict: Verdict::Unchanged,
                            });
                            if let Some(m) = metrics {
                                m.proposals_unchanged.inc();
                            }
                            continue;
                        }
                        match proposal.validate(shape, budget) {
                            Ok(()) => {
                                debug_verify_gate("reconfigure", shape, &proposal, budget);
                                recorder.record_with(|| TraceEvent::ProposalEvaluated {
                                    mechanism: mechanism.name().to_string(),
                                    proposal: proposal.clone(),
                                    verdict: Verdict::Accepted,
                                });
                                if let Some(m) = metrics {
                                    m.proposals_accepted.inc();
                                }
                                reconfig_target = Some(proposal);
                                suspend_started = Some(Instant::now());
                                shared.suspend.store(true, Ordering::Release);
                            }
                            Err(err) => {
                                rejected += 1;
                                recorder.record_with(|| TraceEvent::ProposalEvaluated {
                                    mechanism: mechanism.name().to_string(),
                                    proposal: proposal.clone(),
                                    verdict: Verdict::Rejected { code: err.code() },
                                });
                                if let Some(m) = metrics {
                                    m.proposals_rejected.inc();
                                }
                            }
                        }
                    }
                }
                Err(mpsc::RecvTimeoutError::Disconnected) => break,
            }
        }

        // Epoch fully drained.
        if shared.stop.load(Ordering::Acquire) {
            break 'epochs;
        }
        if let Some(new_config) = reconfig_target {
            config = new_config;
            reconfigurations += 1;
            history.push((start.elapsed().as_secs_f64(), config.clone()));
            shared.monitor.mark_reconfig();
            mechanism.applied(&config);
            pending_pause =
                Some(suspend_started.map_or(0.0, |since| since.elapsed().as_secs_f64()));
            continue 'epochs;
        }
        // No reconfiguration pending: did the program finish?
        let all_finished = statuses.lock().values().all(|s| *s == TaskStatus::Finished);
        if all_finished {
            break 'epochs;
        }
        // Mixed suspension without a target (stop raced): relaunch as-is.
    }

    if recorder.is_enabled() {
        let completed = shared.monitor.queue_completed();
        recorder.record(TraceEvent::Finished {
            completed,
            reconfigurations,
            dropped_events: recorder.dropped(),
        });
    }
    Ok(RunReport {
        elapsed: start.elapsed(),
        reconfigurations,
        rejected_configs: rejected,
        final_config: config,
        config_history: history,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use dope_core::{body_fn, TaskBody, TaskKind, TaskSpec, WorkerSlot};
    use dope_workload::WorkQueue;
    use std::sync::atomic::AtomicU64;

    /// A leaf task draining a shared queue of `n` items.
    fn drain_spec(name: &str, queue: WorkQueue<u64>, hits: Arc<AtomicU64>) -> TaskSpec {
        TaskSpec::leaf(name, TaskKind::Par, move |_slot: WorkerSlot| {
            let queue = queue.clone();
            let hits = Arc::clone(&hits);
            Box::new(body_fn(move |cx| {
                cx.begin();
                let item = queue.dequeue_timeout(Duration::from_millis(2));
                cx.end();
                match item {
                    dope_workload::DequeueOutcome::Item(_) => {
                        hits.fetch_add(1, Ordering::Relaxed);
                        TaskStatus::Executing
                    }
                    dope_workload::DequeueOutcome::Drained => TaskStatus::Finished,
                    dope_workload::DequeueOutcome::TimedOut => {
                        if cx.directive().wants_suspend() {
                            TaskStatus::Suspended
                        } else {
                            TaskStatus::Executing
                        }
                    }
                }
            })) as Box<dyn TaskBody>
        })
    }

    /// The launch gate catches degenerate programs `Config::validate`
    /// tolerates: a nest whose only alternative is empty passes the
    /// first-error-wins validator (zero tasks match zero tasks) but is
    /// rejected by the static analyzer (DV008) in debug builds.
    #[test]
    #[cfg_attr(not(debug_assertions), ignore = "gate compiles out in release builds")]
    #[should_panic(expected = "verification gate (launch)")]
    fn launch_gate_rejects_empty_nest() {
        let spec = TaskSpec::nest("hollow", TaskKind::Par, |_replica: u32| Vec::new());
        let _ = Dope::builder(Goal::MaxThroughput { threads: 4 }).launch(vec![spec]);
    }

    /// The reconfiguration gate re-analyzes accepted proposals. A
    /// well-formed static mechanism must sail through it (the run below
    /// applies one reconfiguration, so the gate executes).
    #[test]
    fn reconfigure_gate_accepts_valid_proposals() {
        let queue = WorkQueue::new();
        for i in 0..2000u64 {
            queue.enqueue(i).unwrap();
        }
        queue.close();
        let hits = Arc::new(AtomicU64::new(0));
        let spec = drain_spec("drain", queue, Arc::clone(&hits));
        let pinned = Config::new(vec![dope_core::TaskConfig::leaf("drain", 2)]);
        let dope = Dope::builder(Goal::MaxThroughput { threads: 4 })
            .mechanism(Box::new(StaticMechanism::new(pinned.clone())))
            .control_period(Duration::from_millis(5))
            .launch(vec![spec])
            .unwrap();
        let report = dope.wait().unwrap();
        assert_eq!(hits.load(Ordering::Relaxed), 2000);
        assert_eq!(report.final_config, pinned);
    }

    /// A recorded run captures the whole decision loop: launch, the
    /// accepted proposal, the reconfiguration epoch with its measured
    /// pause/relaunch latencies, and the terminal summary.
    #[test]
    fn attached_recorder_captures_the_decision_loop() {
        let queue = WorkQueue::new();
        for i in 0..200u64 {
            queue.enqueue(i).unwrap();
        }
        queue.close();
        let hits = Arc::new(AtomicU64::new(0));
        // Each item takes ~1 ms so the run outlives several control
        // periods and the mechanism actually gets consulted.
        let q = queue.clone();
        let h = Arc::clone(&hits);
        let spec = TaskSpec::leaf(
            "drain",
            TaskKind::Par,
            move |_slot: dope_core::WorkerSlot| {
                let queue = q.clone();
                let hits = Arc::clone(&h);
                Box::new(dope_core::body_fn(move |cx| {
                    cx.begin();
                    let item = queue.dequeue_timeout(Duration::from_millis(2));
                    cx.end();
                    match item {
                        dope_workload::DequeueOutcome::Item(_) => {
                            std::thread::sleep(Duration::from_millis(1));
                            hits.fetch_add(1, Ordering::Relaxed);
                            TaskStatus::Executing
                        }
                        dope_workload::DequeueOutcome::Drained => TaskStatus::Finished,
                        dope_workload::DequeueOutcome::TimedOut => {
                            if cx.directive().wants_suspend() {
                                TaskStatus::Suspended
                            } else {
                                TaskStatus::Executing
                            }
                        }
                    }
                })) as Box<dyn dope_core::TaskBody>
            },
        );
        let pinned = Config::new(vec![dope_core::TaskConfig::leaf("drain", 2)]);
        // Starts on the executive's even split, then proposes the pinned
        // config at the first decision point — guaranteeing exactly the
        // reconfiguration this test wants to see traced.
        struct OneShot {
            target: Config,
        }
        impl Mechanism for OneShot {
            fn name(&self) -> &'static str {
                "OneShot"
            }
            fn reconfigure(
                &mut self,
                _snap: &dope_core::MonitorSnapshot,
                _current: &Config,
                _shape: &ProgramShape,
                _res: &Resources,
            ) -> Option<Config> {
                Some(self.target.clone())
            }
        }
        let recorder = dope_trace::Recorder::bounded(4096);
        let dope = Dope::builder(Goal::MaxThroughput { threads: 4 })
            .mechanism(Box::new(OneShot {
                target: pinned.clone(),
            }))
            .control_period(Duration::from_millis(5))
            .recorder(recorder.clone())
            .launch(vec![spec])
            .unwrap();
        let report = dope.wait().unwrap();
        assert!(report.reconfigurations >= 1);

        let records = recorder.records();
        let kinds: Vec<&str> = records.iter().map(|r| r.event.kind()).collect();
        assert_eq!(kinds.first(), Some(&"Launched"));
        assert_eq!(kinds.last(), Some(&"Finished"));
        assert!(kinds.contains(&"SnapshotTaken"));
        assert!(kinds.contains(&"TaskStatsSample"));
        assert!(kinds.contains(&"ProposalEvaluated"));
        assert!(kinds.contains(&"ReconfigureEpoch"));
        let epoch = records
            .iter()
            .find_map(|r| match &r.event {
                TraceEvent::ReconfigureEpoch {
                    pause_secs,
                    relaunch_secs,
                    jobs,
                    config,
                } => Some((*pause_secs, *relaunch_secs, *jobs, config.clone())),
                _ => None,
            })
            .expect("a ReconfigureEpoch event");
        assert!(epoch.0 >= 0.0 && epoch.1 >= 0.0);
        assert_eq!(epoch.2, 2, "new epoch runs the pinned extent-2 jobs");
        assert_eq!(epoch.3, pinned);
    }

    #[test]
    fn runs_to_completion_and_counts_work() {
        let queue = WorkQueue::new();
        for i in 0..500u64 {
            queue.enqueue(i).unwrap();
        }
        queue.close();
        let hits = Arc::new(AtomicU64::new(0));
        let spec = drain_spec("drain", queue, Arc::clone(&hits));
        let dope = Dope::builder(Goal::MaxThroughput { threads: 4 })
            .launch(vec![spec])
            .unwrap();
        let report = dope.wait().unwrap();
        assert_eq!(hits.load(Ordering::Relaxed), 500);
        assert_eq!(report.reconfigurations, 0);
    }

    #[test]
    fn stop_interrupts_long_run() {
        let queue: WorkQueue<u64> = WorkQueue::new();
        // Never closed: tasks would run forever.
        let hits = Arc::new(AtomicU64::new(0));
        let spec = drain_spec("drain", queue, Arc::clone(&hits));
        let dope = Dope::builder(Goal::MaxThroughput { threads: 2 })
            .control_period(Duration::from_millis(5))
            .launch(vec![spec])
            .unwrap();
        std::thread::sleep(Duration::from_millis(30));
        dope.stop();
        let report = dope.wait().unwrap();
        assert!(report.elapsed >= Duration::from_millis(30));
    }

    #[test]
    fn static_mechanism_reconfigures_once_then_settles() {
        let queue = WorkQueue::new();
        for i in 0..2000u64 {
            queue.enqueue(i).unwrap();
        }
        queue.close();
        let hits = Arc::new(AtomicU64::new(0));
        let spec = drain_spec("drain", queue, Arc::clone(&hits));
        // The mechanism pins extent 3, while the initial even split uses 4.
        let target = Config::new(vec![dope_core::TaskConfig::leaf("drain", 3)]);
        let mut mech = StaticMechanism::new(target.clone());
        // Force a different initial config.
        let shape = ProgramShape::new(vec![dope_core::ShapeNode::leaf("drain", TaskKind::Par)]);
        let _ = &mut mech;
        let _ = shape;
        let dope = Dope::builder(Goal::MaxThroughput { threads: 4 })
            .mechanism(Box::new(mech))
            .control_period(Duration::from_millis(5))
            .launch(vec![spec])
            .unwrap();
        let report = dope.wait().unwrap();
        assert_eq!(hits.load(Ordering::Relaxed), 2000);
        assert_eq!(report.final_config, target);
    }
}
