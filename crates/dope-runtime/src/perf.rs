//! Microbenchmark probes for the perf gate.
//!
//! The `dope-bench` `perf` binary (see `docs/performance.md`) drives
//! these probes and emits `BENCH_perf.json`; CI runs them in a reduced
//! configuration and diffs against a checked-in baseline. They live in
//! the runtime crate because they exercise crate-private machinery: the
//! per-worker `RecorderShard` hot path, the monitor's
//! shard aggregation, and — so every report carries a same-machine
//! before/after — a faithful replica of the *retired* shared-mutex
//! record path the shards replaced.
//!
//! None of this is statistical benchmarking infrastructure (criterion
//! covers that in `crates/bench/benches/`); these are cheap wall-clock
//! probes whose job is to catch gross regressions, machine to machine,
//! run to run.

use crate::monitor::Monitor;
use dope_core::{Ewma, TaskPath};
use dope_metrics::Histogram;
use dope_platform::FeatureRegistry;
use parking_lot::Mutex;
use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Barrier};
use std::time::{Duration, Instant};

/// Record-path cost, sharded versus the retired mutex design.
#[derive(Debug, Clone, Copy)]
pub struct RecordPathReport {
    /// Record calls each thread performed per variant.
    pub iters_per_thread: u64,
    /// Writer threads in the contended variants.
    pub threads: u32,
    /// Sharded record, one writer (ns per op).
    pub sharded_single_ns: f64,
    /// Sharded record, `threads` concurrent writers (mean ns per op as
    /// experienced by each writer).
    pub sharded_contended_ns: f64,
    /// Mutex-reference record, one writer (ns per op).
    pub mutex_single_ns: f64,
    /// Mutex-reference record, `threads` writers sharing one lock.
    pub mutex_contended_ns: f64,
}

/// Monitor snapshot latency over a populated path set.
#[derive(Debug, Clone, Copy)]
pub struct SnapshotReport {
    /// Task paths the monitor aggregated.
    pub paths: u32,
    /// Records each path held when snapshotting started.
    pub records_per_path: u64,
    /// Mean wall-clock per `Monitor::snapshot` call (microseconds).
    pub snapshot_micros: f64,
}

/// Times `op` over `iters` calls, returning nanoseconds per op.
fn time_per_op(iters: u64, mut op: impl FnMut(u64)) -> f64 {
    let iters = iters.max(1);
    let t0 = Instant::now();
    for i in 0..iters {
        op(i);
    }
    t0.elapsed().as_nanos() as f64 / iters as f64
}

/// Joins per-thread ns/op results into their mean (panicked threads are
/// skipped; an empty join set reports 0).
fn mean_join(handles: Vec<std::thread::JoinHandle<f64>>) -> f64 {
    let mut total = 0.0;
    let mut joined = 0u32;
    for handle in handles {
        if let Ok(ns) = handle.join() {
            total += ns;
            joined += 1;
        }
    }
    if joined == 0 {
        0.0
    } else {
        total / f64::from(joined)
    }
}

/// A faithful replica of the retired shared-mutex record path: shared
/// invocation/busy counters, a shared histogram, and an EWMA plus
/// completion deque behind one mutex every writer fights over, with the
/// exact self-timing (two clock reads per record) the old code paid.
///
/// Kept runnable so `BENCH_perf.json` always carries a before/after
/// measured on the same machine in the same run — the regression gate
/// never compares against numbers from someone else's hardware.
struct MutexReference {
    invocations: AtomicU64,
    busy_nanos: AtomicU64,
    exec_hist: Histogram,
    overhead_nanos: AtomicU64,
    inner: Mutex<ReferenceInner>,
}

struct ReferenceInner {
    exec_ewma: Ewma,
    completions: VecDeque<Instant>,
}

impl MutexReference {
    fn new() -> Self {
        MutexReference {
            invocations: AtomicU64::new(0),
            busy_nanos: AtomicU64::new(0),
            exec_hist: Histogram::new(),
            overhead_nanos: AtomicU64::new(0),
            inner: Mutex::new(ReferenceInner {
                exec_ewma: Ewma::new(0.25),
                completions: VecDeque::new(),
            }),
        }
    }

    /// The old `PathStats::record`, line for line.
    fn record_reference(&self, exec: Duration, now: Instant, window: Duration) {
        let t0 = Instant::now();
        self.invocations.fetch_add(1, Ordering::Relaxed);
        self.busy_nanos
            .fetch_add(exec.as_nanos() as u64, Ordering::Relaxed);
        self.exec_hist
            .record_nanos(u64::try_from(exec.as_nanos()).unwrap_or(u64::MAX));
        {
            // dope-lint: allow(DL004): benchmark-only replica of the retired mutex hot path; the lock is private to this probe and nests under nothing
            let mut inner = self.inner.lock();
            inner.exec_ewma.update(exec.as_secs_f64());
            inner.completions.push_back(now);
            let horizon = now.checked_sub(window).unwrap_or(now);
            while inner.completions.front().is_some_and(|&t| t < horizon) {
                inner.completions.pop_front();
            }
        }
        self.overhead_nanos
            .fetch_add(t0.elapsed().as_nanos() as u64, Ordering::Relaxed);
    }
}

/// Measures the task-completion record path: the sharded design (one
/// private `RecorderShard` per writer, zero locks)
/// against the retired shared-mutex design, single-threaded and with
/// `threads` concurrent writers on one task path.
#[must_use]
pub fn bench_record_path(iters: u64, threads: u32) -> RecordPathReport {
    let window = Duration::from_secs(10);
    let exec = Duration::from_micros(5);
    let threads = threads.max(1);

    // Sharded, one writer.
    let monitor = Monitor::new(window, 0.25, FeatureRegistry::new());
    let shard = monitor.stats_for(&TaskPath::root().child(0)).shard();
    let now = Instant::now();
    let sharded_single_ns = time_per_op(iters, |_| shard.record(exec, now, window));

    // Sharded, contended: every writer has its own shard of the same
    // path — the contention the design is supposed to have eliminated.
    let monitor = Monitor::new(window, 0.25, FeatureRegistry::new());
    let barrier = Arc::new(Barrier::new(threads as usize));
    let mut handles = Vec::new();
    for _ in 0..threads {
        let monitor = monitor.clone();
        let barrier = Arc::clone(&barrier);
        handles.push(std::thread::spawn(move || {
            let shard = monitor.stats_for(&TaskPath::root().child(0)).shard();
            let now = Instant::now();
            barrier.wait();
            time_per_op(iters, |_| shard.record(exec, now, window))
        }));
    }
    let sharded_contended_ns = mean_join(handles);

    // Mutex reference, one writer.
    let reference = Arc::new(MutexReference::new());
    let now = Instant::now();
    let mutex_single_ns = time_per_op(iters, |_| reference.record_reference(exec, now, window));

    // Mutex reference, contended: one lock shared by every writer.
    let reference = Arc::new(MutexReference::new());
    let barrier = Arc::new(Barrier::new(threads as usize));
    let mut handles = Vec::new();
    for _ in 0..threads {
        let reference = Arc::clone(&reference);
        let barrier = Arc::clone(&barrier);
        handles.push(std::thread::spawn(move || {
            let now = Instant::now();
            barrier.wait();
            time_per_op(iters, |_| reference.record_reference(exec, now, window))
        }));
    }
    let mutex_contended_ns = mean_join(handles);

    RecordPathReport {
        iters_per_thread: iters.max(1),
        threads,
        sharded_single_ns,
        sharded_contended_ns,
        mutex_single_ns,
        mutex_contended_ns,
    }
}

/// Measures `Monitor::snapshot` latency with `paths` task paths, each
/// holding `records_per_path` recorded completions, averaged over
/// `samples` snapshots.
#[must_use]
pub fn bench_snapshot(paths: u32, records_per_path: u64, samples: u32) -> SnapshotReport {
    let window = Duration::from_secs(10);
    let monitor = Monitor::new(window, 0.25, FeatureRegistry::new());
    let now = Instant::now();
    let mut extents = HashMap::new();
    for p in 0..paths {
        let path = TaskPath::root().child(p as u16);
        let shard = monitor.stats_for(&path).shard();
        for i in 0..records_per_path {
            shard.record(Duration::from_nanos(1_000 + i % 1_000), now, window);
        }
        extents.insert(path, 1);
    }
    monitor.install_epoch(Vec::new(), extents);

    let samples = samples.max(1);
    let t0 = Instant::now();
    for _ in 0..samples {
        let _ = monitor.snapshot();
    }
    let snapshot_micros = t0.elapsed().as_micros() as f64 / f64::from(samples);
    SnapshotReport {
        paths,
        records_per_path,
        snapshot_micros,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_path_probe_reports_positive_costs() {
        let report = bench_record_path(200, 2);
        assert!(report.sharded_single_ns > 0.0);
        assert!(report.sharded_contended_ns > 0.0);
        assert!(report.mutex_single_ns > 0.0);
        assert!(report.mutex_contended_ns > 0.0);
        assert_eq!(report.threads, 2);
    }

    #[test]
    fn snapshot_probe_reports_positive_latency() {
        let report = bench_snapshot(3, 50, 2);
        assert!(report.snapshot_micros > 0.0);
        assert_eq!(report.paths, 3);
    }

    #[test]
    fn mutex_reference_replicates_old_bookkeeping() {
        let reference = MutexReference::new();
        let now = Instant::now();
        for _ in 0..10 {
            reference.record_reference(Duration::from_millis(1), now, Duration::from_secs(10));
        }
        assert_eq!(reference.invocations.load(Ordering::Relaxed), 10);
        assert_eq!(reference.busy_nanos.load(Ordering::Relaxed), 10_000_000);
        assert_eq!(reference.inner.lock().completions.len(), 10);
        assert!(reference.overhead_nanos.load(Ordering::Relaxed) > 0);
    }
}
