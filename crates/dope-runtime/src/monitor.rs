//! The live application/platform monitor.
//!
//! The paper's runtime "monitors both the application (A) and platform
//! (B)": per-task execution times through `Task::begin`/`Task::end`
//! (per-thread timers), per-task load through `LoadCB`, and platform
//! features through registered callbacks (Figure 9). The
//! [`Monitor`] aggregates those measurements per task path and freezes
//! them into [`MonitorSnapshot`]s for mechanisms.
//!
//! # Sharded recording
//!
//! Task completion is the monitor's hot path, and it is contention-free
//! by construction: every worker thread records into a private
//! `RecorderShard` (per `(path, thread)` pair) using plain relaxed
//! atomic arithmetic — **zero lock acquisitions**, enforced by the
//! `record_path_acquires_no_locks` test via
//! `lockrank::acquisitions_on_this_thread`. Locks appear only on cold
//! paths: shard lookup when a context is created at epoch launch, and
//! shard aggregation when [`Monitor::snapshot`] or a metrics scrape
//! merges per-worker state into one per-path view. See
//! `docs/performance.md` for the design and the memory-ordering
//! argument.
//!
//! The monitor's overhead is a handful of atomic operations per task
//! invocation (the paper reports less than 1%) — and, unlike the paper,
//! this monitor *proves* it: the record path charges a sampled estimate
//! of its own cost, [`Monitor::snapshot`] self-times exactly, and
//! [`Monitor::monitoring_overhead_ratio`] reports the total as a
//! fraction of application work.
//!
//! Beyond the paper's mean execution times, every invocation latency is
//! recorded into a per-shard log-linear histogram (`dope-metrics`), so
//! snapshots carry `p50/p95/p99_exec_secs` per task and an attached
//! [`MetricsRegistry`] exposes full `dope_task_exec_seconds` histograms
//! to a Prometheus scrape, merged from the shards at render time.

use crate::lockrank::{rank, RankedMutex};
use crate::shard::RecorderShard;
use dope_core::{AdmissionStats, MonitorSnapshot, QueueStats, TaskPath, TaskStats};
use dope_metrics::{names, Counter, Gauge, LocalHistogram, MetricsRegistry};
use dope_platform::FeatureRegistry;
use dope_trace::{AdmissionSampler, Recorder, TraceEvent};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::ThreadId;
use std::time::{Duration, Instant};

/// Per-path measurement cell shared by every worker of a task.
///
/// The cell itself holds no measurements — only the list of per-worker
/// [`RecorderShard`]s that do. Workers obtain their shard once (at
/// context creation, the only locking step) and record into it without
/// synchronization; readers merge all shards on demand.
#[derive(Debug)]
pub(crate) struct PathStats {
    /// When this cell was created — bounds the throughput window right
    /// after launch (see [`PathStats::aggregate`]) and anchors every
    /// shard's completion-ring ticks to one shared epoch.
    created: Instant,
    /// EWMA smoothing factor handed to each shard.
    alpha: f64,
    /// Shared monitoring-overhead accumulator (nanoseconds).
    overhead_nanos: Arc<AtomicU64>,
    /// One recorder shard per worker thread that ever executed this
    /// path. Locked only on cold paths (shard lookup, aggregation); the
    /// record hot path holds an `Arc<RecorderShard>` and takes no locks.
    shards: RankedMutex<Vec<(ThreadId, Arc<RecorderShard>)>>,
}

/// One path's shards merged into a single view, as of some instant.
struct PathAggregate {
    invocations: u64,
    busy_nanos: u64,
    /// Invocation-weighted mean of the per-shard execution EWMAs.
    mean_exec_secs: f64,
    /// Ring-counted completions in the window over the effective
    /// (elapsed-bounded) window length.
    throughput: f64,
    hist: LocalHistogram,
    shards_merged: u64,
}

impl PathStats {
    fn new(alpha: f64, overhead_nanos: Arc<AtomicU64>) -> Self {
        PathStats {
            created: Instant::now(),
            alpha,
            overhead_nanos,
            shards: RankedMutex::new(rank::SHARDS, "shards", Vec::new()),
        }
    }

    /// The calling thread's private recorder shard, created on first
    /// use. This is the one locking step of the record pipeline; task
    /// contexts call it once at creation and keep the `Arc`.
    pub(crate) fn shard(&self) -> Arc<RecorderShard> {
        let id = std::thread::current().id();
        let mut shards = self.shards.lock();
        if let Some((_, shard)) = shards.iter().find(|(tid, _)| *tid == id) {
            return Arc::clone(shard);
        }
        let shard = Arc::new(RecorderShard::new(
            self.alpha,
            self.created,
            Arc::clone(&self.overhead_nanos),
        ));
        shards.push((id, Arc::clone(&shard)));
        shard
    }

    /// Records one completed `begin`..`end` interval through the calling
    /// thread's shard.
    ///
    /// Convenience for tests without a cached shard handle; it pays the
    /// shard lookup every call. Hot paths hold the
    /// [`shard`](PathStats::shard) handle and record directly.
    #[cfg(test)]
    pub fn record(&self, exec: Duration, now: Instant, window: Duration) {
        self.shard().record(exec, now, window);
    }

    /// Merges every worker's shard into one per-path view.
    ///
    /// The throughput denominator is `min(window, elapsed-since-cell-
    /// creation)`: right after launch (or after a reconfiguration
    /// creates a fresh path) the monitor has observed less than a full
    /// window, and dividing by the whole window would underreport
    /// throughput until the window fills.
    fn aggregate(&self, now: Instant, window: Duration) -> PathAggregate {
        let mut invocations = 0u64;
        let mut busy_nanos = 0u64;
        let mut recent = 0u64;
        let mut ewma_weighted = 0.0f64;
        let mut ewma_weight = 0u64;
        let mut hist = LocalHistogram::new();
        let mut shards_merged = 0u64;
        {
            let shards = self.shards.lock();
            for (_, shard) in shards.iter() {
                let inv = shard.invocations();
                invocations += inv;
                busy_nanos += shard.busy_nanos();
                recent += shard.recent_completions(now, window);
                if let Some(mean) = shard.ewma_secs() {
                    ewma_weighted += mean * inv as f64;
                    ewma_weight += inv;
                }
                hist.merge(&shard.local_hist());
                shards_merged += 1;
            }
        }
        let mean_exec_secs = if ewma_weight > 0 {
            ewma_weighted / ewma_weight as f64
        } else {
            0.0
        };
        let elapsed = now.saturating_duration_since(self.created);
        let effective = window.min(elapsed);
        let throughput = recent as f64 / effective.as_secs_f64().max(1e-9);
        PathAggregate {
            invocations,
            busy_nanos,
            mean_exec_secs,
            throughput,
            hist,
            shards_merged,
        }
    }

    /// Completed invocations summed across all shards.
    pub(crate) fn total_invocations(&self) -> u64 {
        self.shards
            .lock()
            .iter()
            .map(|(_, s)| s.invocations())
            .sum()
    }

    /// Accumulated `begin`..`end` work nanoseconds across all shards.
    fn total_busy_nanos(&self) -> u64 {
        self.shards.lock().iter().map(|(_, s)| s.busy_nanos()).sum()
    }

    /// All shards' latency histograms merged, plus how many were merged
    /// (feeds `dope_monitor_shard_merges_total`).
    fn merged_hist(&self) -> (LocalHistogram, u64) {
        let mut hist = LocalHistogram::new();
        let mut merged = 0u64;
        let shards = self.shards.lock();
        for (_, shard) in shards.iter() {
            hist.merge(&shard.local_hist());
            merged += 1;
        }
        (hist, merged)
    }

    /// Mean execution time and recent throughput (test probe).
    #[cfg(test)]
    fn sample(&self, now: Instant, window: Duration) -> (f64, f64) {
        let agg = self.aggregate(now, window);
        (agg.mean_exec_secs, agg.throughput)
    }
}

/// Aggregated live measurements for the whole task nest.
///
/// Cloning shares the underlying state; the executive hands clones to the
/// task contexts it creates.
#[derive(Clone)]
pub struct Monitor {
    shared: Arc<MonitorShared>,
}

/// A registered per-task load probe (queue occupancy, pending work, ...).
type LoadCallback = Arc<dyn Fn() -> f64 + Send + Sync>;

/// An installed admission gate: the stats probe plus the window sampler
/// that turns its cumulative counters into `AdmissionDecision` events.
type AdmissionProbe = (
    Arc<dyn Fn() -> AdmissionStats + Send + Sync>,
    AdmissionSampler,
);

/// Registry handles for the monitor-level metric series.
struct MonitorMetrics {
    registry: MetricsRegistry,
    snapshots: Arc<Counter>,
    shard_merges: Arc<Counter>,
    overhead_seconds: Arc<Gauge>,
    overhead_ratio: Arc<Gauge>,
    queue_occupancy: Arc<Gauge>,
    queue_arrival_rate: Arc<Gauge>,
    queue_enqueued: Arc<Counter>,
    queue_completed: Arc<Counter>,
    power_watts: Arc<Gauge>,
    failed_replicas: Arc<Gauge>,
    admitted_total: Arc<Counter>,
    shed_high_water_total: Arc<Counter>,
    shed_deadline_total: Arc<Counter>,
    admission_queue_delay: Arc<Gauge>,
}

impl MonitorMetrics {
    fn new(registry: MetricsRegistry, shard_merges: Arc<Counter>) -> Self {
        registry.register_counter(
            names::MONITOR_SHARD_MERGES_TOTAL,
            "Recorder shards merged while aggregating snapshots and scrapes",
            &[],
            Arc::clone(&shard_merges),
        );
        MonitorMetrics {
            snapshots: registry.counter(names::MONITOR_SNAPSHOTS_TOTAL, "Monitor snapshots taken"),
            shard_merges,
            overhead_seconds: registry.gauge(
                names::MONITORING_OVERHEAD_SECONDS,
                "Seconds spent inside monitoring code (self-measured)",
            ),
            overhead_ratio: registry.gauge(
                names::MONITORING_OVERHEAD_RATIO,
                "Monitoring overhead as a fraction of application work",
            ),
            queue_occupancy: registry.gauge(names::QUEUE_OCCUPANCY, "Work-queue occupancy"),
            queue_arrival_rate: registry.gauge(
                names::QUEUE_ARRIVAL_RATE,
                "Work-queue arrival rate (requests per second)",
            ),
            queue_enqueued: registry.counter(names::QUEUE_ENQUEUED_TOTAL, "Requests enqueued"),
            queue_completed: registry.counter(names::QUEUE_COMPLETED_TOTAL, "Requests completed"),
            power_watts: registry.gauge(names::POWER_WATTS, "Platform power draw (watts)"),
            failed_replicas: registry.gauge(
                names::TASK_FAILED_REPLICAS,
                "Replicas currently dead in the running epoch",
            ),
            admitted_total: registry.counter(
                names::ADMITTED_TOTAL,
                "Offers the admission gate admitted into the work queue",
            ),
            shed_high_water_total: registry.counter_with_labels(
                names::SHED_TOTAL,
                "Offers the admission gate dropped, by reason",
                &[("reason", "high_water")],
            ),
            shed_deadline_total: registry.counter_with_labels(
                names::SHED_TOTAL,
                "Offers the admission gate dropped, by reason",
                &[("reason", "deadline")],
            ),
            admission_queue_delay: registry.gauge(
                names::ADMISSION_QUEUE_DELAY,
                "Mean queue delay (offer to dispatch) of admitted requests, seconds",
            ),
            registry,
        }
    }

    /// Exposes one task path's cell as labelled scrape series.
    fn register_path(&self, path: &TaskPath, stats: &Arc<PathStats>) {
        register_path_series(&self.registry, &self.shard_merges, path, stats);
    }
}

/// Registers one task path's scrape series on `registry`.
///
/// Both series are render-time *sources*: each scrape merges the path's
/// live shards on demand (and counts the merges into `shard_merges`),
/// so the record path stays free of shared scrape state. A free
/// function so callers can register without holding the monitor's
/// `metrics` lock — the closures acquire `shards` (rank 70) when a
/// render runs them, which must never be declared under `metrics`
/// (rank 80).
fn register_path_series(
    registry: &MetricsRegistry,
    shard_merges: &Arc<Counter>,
    path: &TaskPath,
    stats: &Arc<PathStats>,
) {
    let label = path.to_string();
    let hist_stats = Arc::clone(stats);
    let merges = Arc::clone(shard_merges);
    registry.register_histogram_source(
        names::TASK_EXEC_SECONDS,
        "Per-invocation task execution latency",
        &[("path", &label)],
        Arc::new(move || {
            let (hist, merged) = hist_stats.merged_hist();
            merges.add(merged);
            hist
        }),
    );
    let count_stats = Arc::clone(stats);
    registry.register_counter_source(
        names::TASK_INVOCATIONS_TOTAL,
        "Completed task invocations",
        &[("path", &label)],
        Arc::new(move || count_stats.total_invocations()),
    );
}

/// Per-epoch registrations, installed and read as one unit.
struct EpochState {
    load_cbs: Vec<(TaskPath, LoadCallback)>,
    extents: HashMap<TaskPath, u32>,
    /// Replicas that failed (panicked or vanished) in the running epoch,
    /// per path. Snapshots exclude them from per-task statistics so
    /// mechanisms don't steer toward ghosts; `install_epoch` clears the
    /// set when the next epoch (restarted or degraded) launches.
    failed: HashMap<TaskPath, u32>,
}

struct MonitorShared {
    start: Instant,
    window: Duration,
    ewma_alpha: f64,
    paths: RankedMutex<HashMap<TaskPath, Arc<PathStats>>>,
    epoch: RankedMutex<EpochState>,
    queue_probe: RankedMutex<Option<Arc<dyn Fn() -> QueueStats + Send + Sync>>>,
    /// Probe into the admission gate plus the window sampler that turns
    /// its cumulative counters into `AdmissionDecision` trace events.
    /// `None` until [`Monitor::set_admission_probe`] installs a gate.
    admission_probe: RankedMutex<Option<AdmissionProbe>>,
    features: FeatureRegistry,
    completed_at_reconfig: AtomicU64,
    recorder: RankedMutex<Recorder>,
    /// Nanoseconds spent inside monitoring code, summed across threads.
    overhead_nanos: Arc<AtomicU64>,
    /// Shards merged by snapshots and scrapes (`dope_monitor_shard_
    /// merges_total`); monitor-owned so it counts even with no registry
    /// attached.
    shard_merges: Arc<Counter>,
    metrics: RankedMutex<Option<MonitorMetrics>>,
}

impl std::fmt::Debug for Monitor {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Monitor")
            .field("paths", &self.shared.paths.lock().len())
            .finish_non_exhaustive()
    }
}

impl Monitor {
    /// A monitor with a throughput window of `window` and execution-time
    /// smoothing `ewma_alpha`.
    #[must_use]
    pub fn new(window: Duration, ewma_alpha: f64, features: FeatureRegistry) -> Self {
        Monitor {
            shared: Arc::new(MonitorShared {
                start: Instant::now(),
                window,
                ewma_alpha,
                paths: RankedMutex::new(rank::PATHS, "paths", HashMap::new()),
                epoch: RankedMutex::new(
                    rank::EPOCH,
                    "epoch",
                    EpochState {
                        load_cbs: Vec::new(),
                        extents: HashMap::new(),
                        failed: HashMap::new(),
                    },
                ),
                queue_probe: RankedMutex::new(rank::QUEUE_PROBE, "queue_probe", None),
                admission_probe: RankedMutex::new(rank::ADMISSION_PROBE, "admission_probe", None),
                features,
                completed_at_reconfig: AtomicU64::new(0),
                recorder: RankedMutex::new(rank::RECORDER, "recorder", Recorder::disabled()),
                overhead_nanos: Arc::new(AtomicU64::new(0)),
                shard_merges: Arc::new(Counter::new()),
                metrics: RankedMutex::new(rank::METRICS, "metrics", None),
            }),
        }
    }

    /// Attaches a flight recorder: every [`snapshot`](Monitor::snapshot)
    /// additionally emits one `TaskStatsSample` per task and one
    /// `QueueSample` into it.
    pub fn set_recorder(&self, recorder: Recorder) {
        *self.shared.recorder.lock() = recorder;
    }

    /// Attaches a live metrics registry.
    ///
    /// Registers monitor-level series (snapshot and shard-merge
    /// counters, overhead gauges, queue gauges/counters, power gauge)
    /// immediately, plus one `dope_task_exec_seconds{path=...}`
    /// histogram source per task path — existing paths now, future paths
    /// as they are created. Every subsequent
    /// [`snapshot`](Monitor::snapshot) refreshes the gauges.
    pub fn set_metrics(&self, registry: MetricsRegistry) {
        let metrics = MonitorMetrics::new(registry, Arc::clone(&self.shared.shard_merges));
        for (path, stats) in self.shared.paths.lock().iter() {
            metrics.register_path(path, stats);
        }
        *self.shared.metrics.lock() = Some(metrics);
    }

    /// Requests completed so far per the installed queue probe (0 when no
    /// probe is installed).
    pub(crate) fn queue_completed(&self) -> u64 {
        self.shared
            .queue_probe
            .lock()
            .as_ref()
            .map_or(0, |probe| probe().completed)
    }

    /// The measurement cell for `path`, created on first use.
    pub(crate) fn stats_for(&self, path: &TaskPath) -> Arc<PathStats> {
        let mut paths = self.shared.paths.lock();
        if let Some(stats) = paths.get(path) {
            return Arc::clone(stats);
        }
        let stats = Arc::new(PathStats::new(
            self.shared.ewma_alpha,
            Arc::clone(&self.shared.overhead_nanos),
        ));
        // Clone the registration handles out of the `metrics` guard
        // before registering: the scrape closures acquire `shards`
        // (rank 70), which must not be declared under `metrics`
        // (rank 80).
        let scrape = self
            .shared
            .metrics
            .lock()
            .as_ref()
            .map(|m| (m.registry.clone(), Arc::clone(&m.shard_merges)));
        if let Some((registry, shard_merges)) = scrape {
            register_path_series(&registry, &shard_merges, path, &stats);
        }
        paths.insert(path.clone(), Arc::clone(&stats));
        stats
    }

    /// Registers the load callbacks and extents of a freshly instantiated
    /// epoch, replacing the previous epoch's. Failure marks from the
    /// previous epoch are cleared: a restarted or degraded epoch starts
    /// with every replica alive.
    pub(crate) fn install_epoch(
        &self,
        load_cbs: Vec<(TaskPath, Arc<dyn Fn() -> f64 + Send + Sync>)>,
        extents: HashMap<TaskPath, u32>,
    ) {
        {
            let mut epoch = self.shared.epoch.lock();
            epoch.load_cbs = load_cbs;
            epoch.extents = extents;
            epoch.failed.clear();
        }
        if let Some(metrics) = self.shared.metrics.lock().as_ref() {
            metrics.failed_replicas.set(0.0);
        }
    }

    /// Splices a partially relaunched epoch into the running one: only
    /// the `drained` paths' registrations are replaced, everything else
    /// keeps its live callbacks, extents, and failure marks.
    ///
    /// The drained paths start their new generation with every replica
    /// alive, so their failure marks are cleared and the failed-replicas
    /// gauge is recomputed from what remains.
    pub(crate) fn merge_epoch_paths(
        &self,
        load_cbs: Vec<(TaskPath, Arc<dyn Fn() -> f64 + Send + Sync>)>,
        extents: HashMap<TaskPath, u32>,
        drained: &[TaskPath],
    ) {
        let total: u32 = {
            let mut epoch = self.shared.epoch.lock();
            epoch.load_cbs.retain(|(path, _)| !drained.contains(path));
            epoch.load_cbs.extend(load_cbs);
            for (path, extent) in extents {
                epoch.extents.insert(path, extent);
            }
            for path in drained {
                epoch.failed.remove(path);
            }
            epoch.failed.values().sum()
        };
        if let Some(metrics) = self.shared.metrics.lock().as_ref() {
            metrics.failed_replicas.set(f64::from(total));
        }
    }

    /// Marks one replica of `path` as dead in the running epoch.
    ///
    /// Snapshots taken afterwards exclude the dead replica: the path's
    /// utilization denominator shrinks to its surviving extent, and a
    /// path with no survivors vanishes from `snapshot().tasks` entirely
    /// so mechanisms don't steer threads toward ghosts.
    pub(crate) fn mark_failed(&self, path: &TaskPath) {
        let total: u32 = {
            let mut epoch = self.shared.epoch.lock();
            *epoch.failed.entry(path.clone()).or_insert(0) += 1;
            epoch.failed.values().sum()
        };
        if let Some(metrics) = self.shared.metrics.lock().as_ref() {
            metrics.failed_replicas.set(f64::from(total));
        }
    }

    /// Replicas currently marked dead in the running epoch.
    #[must_use]
    pub fn failed_replicas(&self) -> u32 {
        self.shared.epoch.lock().failed.values().sum()
    }

    /// Installs the work-queue probe feeding `snapshot().queue`.
    pub fn set_queue_probe<F>(&self, probe: F)
    where
        F: Fn() -> QueueStats + Send + Sync + 'static,
    {
        *self.shared.queue_probe.lock() = Some(Arc::new(probe));
    }

    /// Installs the admission-gate probe feeding `snapshot().admission`.
    ///
    /// `policy` is the gate's stable lowercase tag (`"block"` / `"shed"`
    /// / `"deadline"`); each snapshot with offered traffic also emits one
    /// `AdmissionDecision` event into an attached recorder, stamped with
    /// that tag.
    pub fn set_admission_probe<F>(&self, policy: &str, probe: F)
    where
        F: Fn() -> AdmissionStats + Send + Sync + 'static,
    {
        *self.shared.admission_probe.lock() =
            Some((Arc::new(probe), AdmissionSampler::new(policy)));
    }

    /// The platform feature registry (paper Figure 9).
    #[must_use]
    pub fn features(&self) -> &FeatureRegistry {
        &self.shared.features
    }

    /// Marks a reconfiguration: resets the dispatches-since-reconfig
    /// counter.
    pub(crate) fn mark_reconfig(&self) {
        let completed = self
            .shared
            .queue_probe
            .lock()
            .as_ref()
            .map_or(0, |p| p().completed);
        self.shared
            .completed_at_reconfig
            .store(completed, Ordering::Relaxed);
    }

    /// Seconds since the monitor was created.
    #[must_use]
    pub fn elapsed_secs(&self) -> f64 {
        self.shared.start.elapsed().as_secs_f64()
    }

    /// Seconds spent inside monitoring code so far (self-measured across
    /// all worker threads: a sampled estimate of every shard record plus
    /// every [`snapshot`](Monitor::snapshot), timed exactly).
    #[must_use]
    pub fn monitoring_overhead_secs(&self) -> f64 {
        self.shared.overhead_nanos.load(Ordering::Relaxed) as f64 / 1e9
    }

    /// Monitoring overhead as a fraction of application work.
    ///
    /// The denominator is `max(total busy seconds, wall-clock seconds)`:
    /// in steady state that is the accumulated `begin`..`end` work time
    /// across all workers (the quantity the paper's "< 1 %" claim is
    /// stated against); before any work has completed, wall-clock time
    /// keeps the ratio meaningful instead of dividing by zero.
    #[must_use]
    pub fn monitoring_overhead_ratio(&self) -> f64 {
        let overhead = self.monitoring_overhead_secs();
        let busy: u64 = self
            .shared
            .paths
            .lock()
            .values()
            .map(|s| s.total_busy_nanos())
            .sum();
        let busy_secs = busy as f64 / 1e9;
        overhead / busy_secs.max(self.elapsed_secs()).max(1e-9)
    }

    /// Freezes the current measurements into a snapshot.
    ///
    /// Aggregation happens here, on the monitor's thread: every path's
    /// worker shards are merged into one view (counted by
    /// `dope_monitor_shard_merges_total`), so workers never pay for the
    /// snapshot. The cost of taking the snapshot itself is charged to
    /// the monitoring-overhead meter.
    #[must_use]
    pub fn snapshot(&self) -> MonitorSnapshot {
        let t0 = Instant::now();
        let now = t0;
        let shared = &self.shared;
        let mut snap = MonitorSnapshot::at(self.elapsed_secs());

        // Per-task loads (summed across replicas), extents, and failure
        // marks are installed together and read together.
        let (loads, extents, failed) = {
            let epoch = shared.epoch.lock();
            let mut loads: HashMap<TaskPath, f64> = HashMap::new();
            for (path, cb) in &epoch.load_cbs {
                *loads.entry(path.clone()).or_insert(0.0) += cb();
            }
            (loads, epoch.extents.clone(), epoch.failed.clone())
        };

        let elapsed = self.elapsed_secs().max(1e-9);
        let mut merged = 0u64;
        for (path, stats) in shared.paths.lock().iter() {
            let agg = stats.aggregate(now, shared.window);
            merged += agg.shards_merged;
            let extent = extents.get(path).copied().unwrap_or(1).max(1);
            // Dead replicas leave the statistics: a fully failed path is
            // a ghost no mechanism should feed threads to, and a partly
            // failed path only counts its survivors in the utilization
            // denominator.
            let dead = failed.get(path).copied().unwrap_or(0);
            let alive = extent.saturating_sub(dead);
            if dead > 0 && alive == 0 {
                continue;
            }
            let busy_secs = agg.busy_nanos as f64 / 1e9;
            snap.tasks.insert(
                path.clone(),
                TaskStats {
                    invocations: agg.invocations,
                    mean_exec_secs: agg.mean_exec_secs,
                    throughput: agg.throughput,
                    load: loads.get(path).copied().unwrap_or(0.0),
                    utilization: (busy_secs / (elapsed * f64::from(alive.max(1)))).min(1.0),
                    p50_exec_secs: agg.hist.quantile_secs(0.50).unwrap_or(0.0),
                    p95_exec_secs: agg.hist.quantile_secs(0.95).unwrap_or(0.0),
                    p99_exec_secs: agg.hist.quantile_secs(0.99).unwrap_or(0.0),
                },
            );
        }
        shared.shard_merges.add(merged);

        if let Some(probe) = shared.queue_probe.lock().as_ref() {
            snap.queue = probe();
        }
        snap.dispatches_since_reconfig = snap
            .queue
            .completed
            .saturating_sub(shared.completed_at_reconfig.load(Ordering::Relaxed));
        snap.power_watts = shared.features.value("SystemPower");

        // Read the gate's cumulative counters and classify the window in
        // one step: the sampler's previous-sample state lives with the
        // probe, under the same rank-50 lock.
        let admission_event = {
            let mut probe = shared.admission_probe.lock();
            match probe.as_mut() {
                Some((probe, sampler)) => {
                    snap.admission = probe();
                    sampler.sample(&snap.admission)
                }
                None => None,
            }
        };

        let recorder = shared.recorder.lock().clone();
        if recorder.is_enabled() {
            for (path, stats) in &snap.tasks {
                recorder.record(TraceEvent::TaskStatsSample {
                    path: path.clone(),
                    stats: *stats,
                });
            }
            recorder.record(TraceEvent::QueueSample { queue: snap.queue });
            if let Some(event) = admission_event {
                recorder.record(event);
            }
        }

        // Computed before acquiring `metrics`: monitoring_overhead_ratio
        // takes `paths` (rank 10), which must never nest under `metrics`
        // (rank 80) — see crates/dope-lint/lock-order.txt. stats_for
        // nests the two the other way round, so reversing here would be
        // a deadlock window, not just a style problem.
        let overhead_secs = self.monitoring_overhead_secs();
        let overhead_ratio = self.monitoring_overhead_ratio();
        if let Some(metrics) = shared.metrics.lock().as_ref() {
            metrics.snapshots.inc();
            metrics.queue_occupancy.set(snap.queue.occupancy);
            metrics.queue_arrival_rate.set(snap.queue.arrival_rate);
            metrics.queue_enqueued.set_at_least(snap.queue.enqueued);
            metrics.queue_completed.set_at_least(snap.queue.completed);
            if let Some(watts) = snap.power_watts {
                metrics.power_watts.set(watts);
            }
            metrics.overhead_seconds.set(overhead_secs);
            metrics.overhead_ratio.set(overhead_ratio);
            if snap.admission.offered > 0 {
                metrics.admitted_total.set_at_least(snap.admission.admitted);
                metrics
                    .shed_high_water_total
                    .set_at_least(snap.admission.shed_high_water);
                metrics
                    .shed_deadline_total
                    .set_at_least(snap.admission.shed_deadline);
                metrics
                    .admission_queue_delay
                    .set(snap.admission.mean_queue_delay_secs);
            }
        }
        shared
            .overhead_nanos
            .fetch_add(t0.elapsed().as_nanos() as u64, Ordering::Relaxed);
        snap
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dope_metrics::Histogram;

    fn monitor() -> Monitor {
        Monitor::new(Duration::from_secs(10), 0.25, FeatureRegistry::new())
    }

    #[test]
    fn records_invocations_and_exec_time() {
        let m = monitor();
        let path: TaskPath = "0.1".parse().unwrap();
        let stats = m.stats_for(&path);
        let now = Instant::now();
        stats.record(Duration::from_millis(10), now, Duration::from_secs(10));
        stats.record(Duration::from_millis(30), now, Duration::from_secs(10));
        m.install_epoch(Vec::new(), HashMap::from([(path.clone(), 2)]));
        let snap = m.snapshot();
        let ts = snap.task(&path).unwrap();
        assert_eq!(ts.invocations, 2);
        assert!(ts.mean_exec_secs > 0.009 && ts.mean_exec_secs < 0.031);
        assert!(ts.throughput > 0.0);
    }

    #[test]
    fn snapshot_carries_exec_percentiles() {
        let m = monitor();
        let path: TaskPath = "0".parse().unwrap();
        let stats = m.stats_for(&path);
        let now = Instant::now();
        // 99 fast invocations and one slow outlier: the mean hides the
        // tail, the percentiles must expose it.
        for _ in 0..99 {
            stats.record(Duration::from_millis(1), now, Duration::from_secs(10));
        }
        stats.record(Duration::from_millis(500), now, Duration::from_secs(10));
        m.install_epoch(Vec::new(), HashMap::from([(path.clone(), 1)]));
        let snap = m.snapshot();
        let ts = snap.task(&path).unwrap();
        assert!(
            (ts.p50_exec_secs - 0.001).abs() / 0.001 < 0.05,
            "p50 = {}",
            ts.p50_exec_secs
        );
        assert!(
            (ts.p99_exec_secs - 0.5).abs() / 0.5 < 0.05,
            "p99 = {}",
            ts.p99_exec_secs
        );
        assert!(ts.p50_exec_secs <= ts.p95_exec_secs);
        assert!(ts.p95_exec_secs <= ts.p99_exec_secs);
    }

    #[test]
    fn early_window_throughput_uses_elapsed_not_window() {
        let m = monitor();
        let path: TaskPath = "0".parse().unwrap();
        let stats = m.stats_for(&path);
        // 50 completions within ~1 s of cell creation, sampled with a
        // 10 s window: dividing by the full 10 s would report ~5/s; the
        // elapsed-bounded divisor (~1 s) reports ~50/s.
        let now = stats.created + Duration::from_secs(1);
        for _ in 0..50 {
            stats.record(Duration::from_micros(10), now, Duration::from_secs(10));
        }
        let (_, throughput) = stats.sample(now, Duration::from_secs(10));
        assert!(
            (throughput - 50.0).abs() < 1.0,
            "early-window throughput {throughput}, want ~50/s"
        );
        // Once the window has filled, the window itself is the divisor.
        let later = stats.created + Duration::from_secs(20);
        let (_, settled) = stats.sample(later, Duration::from_secs(10));
        assert!(settled <= 0.1, "all completions aged out: {settled}");
    }

    #[test]
    fn load_callbacks_sum_across_replicas() {
        let m = monitor();
        let path: TaskPath = "0".parse().unwrap();
        let _ = m.stats_for(&path);
        m.install_epoch(
            vec![
                (path.clone(), Arc::new(|| 2.0)),
                (path.clone(), Arc::new(|| 3.0)),
            ],
            HashMap::from([(path.clone(), 2)]),
        );
        let snap = m.snapshot();
        assert_eq!(snap.task(&path).unwrap().load, 5.0);
    }

    #[test]
    fn queue_probe_feeds_snapshot() {
        let m = monitor();
        m.set_queue_probe(|| QueueStats {
            occupancy: 7.0,
            arrival_rate: 2.0,
            enqueued: 10,
            completed: 3,
        });
        let snap = m.snapshot();
        assert_eq!(snap.queue.occupancy, 7.0);
        assert_eq!(snap.dispatches_since_reconfig, 3);
        m.mark_reconfig();
        assert_eq!(m.snapshot().dispatches_since_reconfig, 0);
    }

    #[test]
    fn admission_probe_feeds_snapshot_recorder_and_metrics() {
        let m = monitor();
        m.set_admission_probe("shed", || AdmissionStats {
            offered: 100,
            admitted: 80,
            shed_high_water: 20,
            shed_deadline: 0,
            mean_queue_delay_secs: 0.015,
        });
        let recorder = Recorder::bounded(16);
        m.set_recorder(recorder.clone());
        let registry = MetricsRegistry::new();
        m.set_metrics(registry.clone());

        let snap = m.snapshot();
        assert_eq!(snap.admission.offered, 100);
        assert_eq!(snap.admission.shed(), 20);

        let records = recorder.records();
        let TraceEvent::AdmissionDecision {
            policy,
            verdict,
            reason,
            ..
        } = &records
            .iter()
            .find(|r| r.event.kind() == "AdmissionDecision")
            .expect("snapshot must emit an admission sample")
            .event
        else {
            panic!("wrong kind");
        };
        assert_eq!(policy, "shed");
        assert_eq!(verdict, "shed");
        assert_eq!(reason, "high_water");

        let text = registry.render();
        assert!(text.contains("dope_admitted_total 80"), "{text}");
        assert!(
            text.contains("dope_shed_total{reason=\"high_water\"} 20"),
            "{text}"
        );
        assert!(
            text.contains("dope_shed_total{reason=\"deadline\"} 0"),
            "{text}"
        );
        assert!(text.contains("dope_admission_queue_delay 0.015"), "{text}");
    }

    #[test]
    fn snapshot_without_admission_probe_reports_zero_stats() {
        let m = monitor();
        let recorder = Recorder::bounded(16);
        m.set_recorder(recorder.clone());
        let snap = m.snapshot();
        assert_eq!(snap.admission, AdmissionStats::default());
        assert!(recorder
            .records()
            .iter()
            .all(|r| r.event.kind() != "AdmissionDecision"));
    }

    #[test]
    fn power_feature_appears_in_snapshot() {
        let features = FeatureRegistry::new();
        features.register("SystemPower", || 612.5);
        let m = Monitor::new(Duration::from_secs(5), 0.25, features);
        assert_eq!(m.snapshot().power_watts, Some(612.5));
    }

    #[test]
    fn snapshot_emits_samples_into_an_attached_recorder() {
        let m = monitor();
        let path: TaskPath = "0".parse().unwrap();
        let stats = m.stats_for(&path);
        stats.record(
            Duration::from_millis(5),
            Instant::now(),
            Duration::from_secs(10),
        );
        m.install_epoch(Vec::new(), HashMap::from([(path, 1)]));
        let recorder = Recorder::bounded(16);
        m.set_recorder(recorder.clone());
        let _ = m.snapshot();
        let kinds: Vec<&str> = recorder.records().iter().map(|r| r.event.kind()).collect();
        assert_eq!(kinds, ["TaskStatsSample", "QueueSample"]);
    }

    #[test]
    fn failed_replicas_leave_the_snapshot() {
        let m = monitor();
        let alive: TaskPath = "0".parse().unwrap();
        let doomed: TaskPath = "1".parse().unwrap();
        let now = Instant::now();
        for path in [&alive, &doomed] {
            m.stats_for(path)
                .record(Duration::from_millis(2), now, Duration::from_secs(10));
        }
        m.install_epoch(
            Vec::new(),
            HashMap::from([(alive.clone(), 2), (doomed.clone(), 1)]),
        );
        assert_eq!(m.failed_replicas(), 0);
        // One of `alive`'s two replicas dies: the path stays, but its
        // utilization denominator shrinks to the single survivor.
        let full = m.snapshot().task(&alive).unwrap().utilization;
        m.mark_failed(&alive);
        assert_eq!(m.failed_replicas(), 1);
        let snap = m.snapshot();
        let degraded = snap.task(&alive).unwrap().utilization;
        assert!(
            degraded >= full,
            "survivor utilization {degraded} must not shrink below {full}"
        );
        // `doomed` loses its only replica: the whole path vanishes.
        m.mark_failed(&doomed);
        assert_eq!(m.failed_replicas(), 2);
        let snap = m.snapshot();
        assert!(snap.task(&doomed).is_none(), "ghost path must be excluded");
        assert!(snap.task(&alive).is_some());
        // The next epoch resurrects everything.
        m.install_epoch(Vec::new(), HashMap::from([(doomed.clone(), 1)]));
        assert_eq!(m.failed_replicas(), 0);
        assert!(m.snapshot().task(&doomed).is_some());
    }

    #[test]
    fn merge_epoch_paths_replaces_only_the_drained_paths() {
        let m = monitor();
        let kept: TaskPath = "0".parse().unwrap();
        let drained: TaskPath = "1".parse().unwrap();
        let _ = m.stats_for(&kept);
        let _ = m.stats_for(&drained);
        m.install_epoch(
            vec![
                (kept.clone(), Arc::new(|| 1.0)),
                (drained.clone(), Arc::new(|| 2.0)),
            ],
            HashMap::from([(kept.clone(), 2), (drained.clone(), 1)]),
        );
        // One failure on each path before the partial boundary.
        m.mark_failed(&kept);
        m.mark_failed(&drained);
        assert_eq!(m.failed_replicas(), 2);

        // The partial relaunch widens `drained` to 3 workers with a new
        // load callback; `kept` must keep its registrations and its
        // failure mark.
        m.merge_epoch_paths(
            vec![(drained.clone(), Arc::new(|| 5.0))],
            HashMap::from([(drained.clone(), 3)]),
            std::slice::from_ref(&drained),
        );
        assert_eq!(
            m.failed_replicas(),
            1,
            "drained path's marks cleared, kept path's retained"
        );
        let snap = m.snapshot();
        assert!((snap.task(&kept).unwrap().load - 1.0).abs() < 1e-9);
        assert!((snap.task(&drained).unwrap().load - 5.0).abs() < 1e-9);
    }

    #[test]
    fn failed_replica_gauge_tracks_marks() {
        let m = monitor();
        let path: TaskPath = "0".parse().unwrap();
        let _ = m.stats_for(&path);
        let registry = MetricsRegistry::new();
        m.set_metrics(registry.clone());
        m.install_epoch(Vec::new(), HashMap::from([(path.clone(), 2)]));
        m.mark_failed(&path);
        assert!(
            registry.render().contains("dope_task_failed_replicas 1"),
            "{}",
            registry.render()
        );
        m.install_epoch(Vec::new(), HashMap::from([(path, 2)]));
        assert!(
            registry.render().contains("dope_task_failed_replicas 0"),
            "{}",
            registry.render()
        );
    }

    #[test]
    fn same_path_shares_cell() {
        let m = monitor();
        let p: TaskPath = "1".parse().unwrap();
        let a = m.stats_for(&p);
        let b = m.stats_for(&p);
        a.record(
            Duration::from_millis(1),
            Instant::now(),
            Duration::from_secs(1),
        );
        assert_eq!(b.total_invocations(), 1);
    }

    #[test]
    fn attached_registry_sees_task_queue_and_overhead_series() {
        let m = monitor();
        m.set_queue_probe(|| QueueStats {
            occupancy: 4.0,
            arrival_rate: 8.5,
            enqueued: 20,
            completed: 15,
        });
        // One path exists before attach, one is created after: both must
        // end up registered.
        let before: TaskPath = "0".parse().unwrap();
        let s0 = m.stats_for(&before);
        let registry = MetricsRegistry::new();
        m.set_metrics(registry.clone());
        let after: TaskPath = "1".parse().unwrap();
        let s1 = m.stats_for(&after);
        let now = Instant::now();
        s0.record(Duration::from_millis(2), now, Duration::from_secs(10));
        s1.record(Duration::from_millis(4), now, Duration::from_secs(10));
        let _ = m.snapshot();
        let text = registry.render();
        assert!(
            text.contains("dope_task_exec_seconds_count{path=\"0\"} 1"),
            "{text}"
        );
        assert!(
            text.contains("dope_task_exec_seconds_count{path=\"1\"} 1"),
            "{text}"
        );
        assert!(
            text.contains("dope_task_invocations_total{path=\"0\"} 1"),
            "{text}"
        );
        assert!(text.contains("dope_monitor_snapshots_total 1"), "{text}");
        // The snapshot above merged one shard per path.
        assert!(text.contains("dope_monitor_shard_merges_total 2"), "{text}");
        assert!(text.contains("dope_queue_arrival_rate 8.5"), "{text}");
        assert!(text.contains("dope_queue_completed_total 15"), "{text}");
        assert!(text.contains("dope_monitoring_overhead_ratio "), "{text}");
    }

    #[test]
    fn overhead_meter_accumulates_and_stays_small() {
        let m = monitor();
        let path: TaskPath = "0".parse().unwrap();
        let stats = m.stats_for(&path);
        assert_eq!(m.monitoring_overhead_secs(), 0.0);
        let now = Instant::now();
        for _ in 0..100 {
            // 1 ms of (claimed) work per 1 record call.
            stats.record(Duration::from_millis(1), now, Duration::from_secs(10));
        }
        let _ = m.snapshot();
        let overhead = m.monitoring_overhead_secs();
        assert!(overhead > 0.0, "overhead meter never advanced");
        let ratio = m.monitoring_overhead_ratio();
        assert!(ratio >= 0.0 && ratio.is_finite());
    }

    #[test]
    fn record_path_acquires_no_locks() {
        let m = monitor();
        let path: TaskPath = "0".parse().unwrap();
        let shard = m.stats_for(&path).shard();
        let now = Instant::now();
        let before = crate::lockrank::acquisitions_on_this_thread();
        for _ in 0..1000 {
            shard.record(Duration::from_micros(5), now, Duration::from_secs(10));
        }
        assert_eq!(
            crate::lockrank::acquisitions_on_this_thread(),
            before,
            "the record hot path must not acquire any ranked lock"
        );
    }

    #[test]
    fn concurrent_records_are_neither_lost_nor_double_counted() {
        const THREADS: u64 = 8;
        const PER_THREAD: u64 = 5_000;
        // Deterministic per-thread durations so an exact serial
        // reference can be rebuilt after the fact.
        fn exec_nanos(thread: u64, i: u64) -> u64 {
            1_000 + (thread * 31 + i) % 997
        }

        let m = monitor();
        let path: TaskPath = "0".parse().unwrap();
        let window = Duration::from_secs(600); // nothing ages out mid-test
        m.install_epoch(Vec::new(), HashMap::from([(path.clone(), THREADS as u32)]));
        let stats = m.stats_for(&path);

        let mut handles = Vec::new();
        for t in 0..THREADS {
            let m = m.clone();
            let path = path.clone();
            handles.push(std::thread::spawn(move || {
                let shard = m.stats_for(&path).shard();
                let now = Instant::now();
                for i in 0..PER_THREAD {
                    shard.record(Duration::from_nanos(exec_nanos(t, i)), now, window);
                }
            }));
        }
        // Snapshot concurrently with the writers: aggregation must never
        // tear, and every intermediate count must stay plausible.
        let deadline = Instant::now() + Duration::from_millis(50);
        while Instant::now() < deadline {
            let snap = m.snapshot();
            if let Some(ts) = snap.task(&path) {
                assert!(ts.invocations <= THREADS * PER_THREAD);
            }
        }
        for handle in handles {
            handle.join().expect("writer thread panicked");
        }

        let agg = stats.aggregate(Instant::now(), window);
        assert_eq!(agg.shards_merged, THREADS, "one shard per writer thread");
        assert_eq!(agg.invocations, THREADS * PER_THREAD, "no lost records");

        // The merged histogram and busy time must equal a serial
        // reference of the very same durations: nothing lost, nothing
        // double-counted, bucket by bucket.
        let reference = Histogram::new();
        let mut busy = 0u64;
        for t in 0..THREADS {
            for i in 0..PER_THREAD {
                let nanos = exec_nanos(t, i);
                reference.record_nanos(nanos);
                busy += nanos;
            }
        }
        assert_eq!(agg.busy_nanos, busy);
        assert_eq!(agg.hist, reference.to_local());
    }
}
