//! The live application/platform monitor.
//!
//! The paper's runtime "monitors both the application (A) and platform
//! (B)": per-task execution times through `Task::begin`/`Task::end`
//! (per-thread timers), per-task load through `LoadCB`, and platform
//! features through registered callbacks (Figure 9). The
//! [`Monitor`] aggregates those measurements per task path and freezes
//! them into [`MonitorSnapshot`]s for mechanisms. Its overhead is a
//! handful of atomic operations per task invocation (the paper reports
//! less than 1%).

use dope_core::{Ewma, MonitorSnapshot, QueueStats, TaskPath, TaskStats};
use dope_platform::FeatureRegistry;
use dope_trace::{Recorder, TraceEvent};
use parking_lot::Mutex;
use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Per-path measurement cell shared by every worker of a task.
#[derive(Debug)]
pub(crate) struct PathStats {
    pub invocations: AtomicU64,
    pub busy_nanos: AtomicU64,
    inner: Mutex<PathStatsInner>,
}

#[derive(Debug)]
struct PathStatsInner {
    exec_ewma: Ewma,
    completions: VecDeque<Instant>,
}

impl PathStats {
    fn new(alpha: f64) -> Self {
        PathStats {
            invocations: AtomicU64::new(0),
            busy_nanos: AtomicU64::new(0),
            inner: Mutex::new(PathStatsInner {
                exec_ewma: Ewma::new(alpha),
                completions: VecDeque::new(),
            }),
        }
    }

    /// Records one completed `begin`..`end` interval.
    pub fn record(&self, exec: Duration, now: Instant, window: Duration) {
        self.invocations.fetch_add(1, Ordering::Relaxed);
        self.busy_nanos
            .fetch_add(exec.as_nanos() as u64, Ordering::Relaxed);
        let mut inner = self.inner.lock();
        inner.exec_ewma.update(exec.as_secs_f64());
        inner.completions.push_back(now);
        let horizon = now.checked_sub(window).unwrap_or(now);
        while inner.completions.front().is_some_and(|&t| t < horizon) {
            inner.completions.pop_front();
        }
    }

    fn sample(&self, now: Instant, window: Duration) -> (f64, f64) {
        let inner = self.inner.lock();
        let horizon = now.checked_sub(window).unwrap_or(now);
        let recent = inner.completions.iter().filter(|&&t| t >= horizon).count();
        let throughput = recent as f64 / window.as_secs_f64().max(1e-9);
        (inner.exec_ewma.value_or(0.0), throughput)
    }
}

/// Aggregated live measurements for the whole task nest.
///
/// Cloning shares the underlying state; the executive hands clones to the
/// task contexts it creates.
#[derive(Clone)]
pub struct Monitor {
    shared: Arc<MonitorShared>,
}

/// A registered per-task load probe (queue occupancy, pending work, ...).
type LoadCallback = Arc<dyn Fn() -> f64 + Send + Sync>;

struct MonitorShared {
    start: Instant,
    window: Duration,
    ewma_alpha: f64,
    paths: Mutex<HashMap<TaskPath, Arc<PathStats>>>,
    load_cbs: Mutex<Vec<(TaskPath, LoadCallback)>>,
    extents: Mutex<HashMap<TaskPath, u32>>,
    queue_probe: Mutex<Option<Arc<dyn Fn() -> QueueStats + Send + Sync>>>,
    features: FeatureRegistry,
    completed_at_reconfig: AtomicU64,
    recorder: Mutex<Recorder>,
}

impl std::fmt::Debug for Monitor {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Monitor")
            .field("paths", &self.shared.paths.lock().len())
            .finish_non_exhaustive()
    }
}

impl Monitor {
    /// A monitor with a throughput window of `window` and execution-time
    /// smoothing `ewma_alpha`.
    #[must_use]
    pub fn new(window: Duration, ewma_alpha: f64, features: FeatureRegistry) -> Self {
        Monitor {
            shared: Arc::new(MonitorShared {
                start: Instant::now(),
                window,
                ewma_alpha,
                paths: Mutex::new(HashMap::new()),
                load_cbs: Mutex::new(Vec::new()),
                extents: Mutex::new(HashMap::new()),
                queue_probe: Mutex::new(None),
                features,
                completed_at_reconfig: AtomicU64::new(0),
                recorder: Mutex::new(Recorder::disabled()),
            }),
        }
    }

    /// Attaches a flight recorder: every [`snapshot`](Monitor::snapshot)
    /// additionally emits one `TaskStatsSample` per task and one
    /// `QueueSample` into it.
    pub fn set_recorder(&self, recorder: Recorder) {
        *self.shared.recorder.lock() = recorder;
    }

    /// Requests completed so far per the installed queue probe (0 when no
    /// probe is installed).
    pub(crate) fn queue_completed(&self) -> u64 {
        self.shared
            .queue_probe
            .lock()
            .as_ref()
            .map_or(0, |probe| probe().completed)
    }

    /// The measurement cell for `path`, created on first use.
    pub(crate) fn stats_for(&self, path: &TaskPath) -> Arc<PathStats> {
        let mut paths = self.shared.paths.lock();
        Arc::clone(
            paths
                .entry(path.clone())
                .or_insert_with(|| Arc::new(PathStats::new(self.shared.ewma_alpha))),
        )
    }

    /// Registers the load callbacks and extents of a freshly instantiated
    /// epoch, replacing the previous epoch's.
    pub(crate) fn install_epoch(
        &self,
        load_cbs: Vec<(TaskPath, Arc<dyn Fn() -> f64 + Send + Sync>)>,
        extents: HashMap<TaskPath, u32>,
    ) {
        *self.shared.load_cbs.lock() = load_cbs;
        *self.shared.extents.lock() = extents;
    }

    /// Installs the work-queue probe feeding `snapshot().queue`.
    pub fn set_queue_probe<F>(&self, probe: F)
    where
        F: Fn() -> QueueStats + Send + Sync + 'static,
    {
        *self.shared.queue_probe.lock() = Some(Arc::new(probe));
    }

    /// The platform feature registry (paper Figure 9).
    #[must_use]
    pub fn features(&self) -> &FeatureRegistry {
        &self.shared.features
    }

    /// Marks a reconfiguration: resets the dispatches-since-reconfig
    /// counter.
    pub(crate) fn mark_reconfig(&self) {
        let completed = self
            .shared
            .queue_probe
            .lock()
            .as_ref()
            .map_or(0, |p| p().completed);
        self.shared
            .completed_at_reconfig
            .store(completed, Ordering::Relaxed);
    }

    /// Seconds since the monitor was created.
    #[must_use]
    pub fn elapsed_secs(&self) -> f64 {
        self.shared.start.elapsed().as_secs_f64()
    }

    /// Freezes the current measurements into a snapshot.
    #[must_use]
    pub fn snapshot(&self) -> MonitorSnapshot {
        let now = Instant::now();
        let shared = &self.shared;
        let mut snap = MonitorSnapshot::at(self.elapsed_secs());

        // Per-task loads, aggregated (summed) across replicas.
        let mut loads: HashMap<TaskPath, f64> = HashMap::new();
        for (path, cb) in shared.load_cbs.lock().iter() {
            *loads.entry(path.clone()).or_insert(0.0) += cb();
        }

        let extents = shared.extents.lock().clone();
        let elapsed = self.elapsed_secs().max(1e-9);
        for (path, stats) in shared.paths.lock().iter() {
            let (mean_exec, throughput) = stats.sample(now, shared.window);
            let extent = extents.get(path).copied().unwrap_or(1).max(1);
            let busy_secs = stats.busy_nanos.load(Ordering::Relaxed) as f64 / 1e9;
            snap.tasks.insert(
                path.clone(),
                TaskStats {
                    invocations: stats.invocations.load(Ordering::Relaxed),
                    mean_exec_secs: mean_exec,
                    throughput,
                    load: loads.get(path).copied().unwrap_or(0.0),
                    utilization: (busy_secs / (elapsed * f64::from(extent))).min(1.0),
                },
            );
        }

        if let Some(probe) = shared.queue_probe.lock().as_ref() {
            snap.queue = probe();
        }
        snap.dispatches_since_reconfig = snap
            .queue
            .completed
            .saturating_sub(shared.completed_at_reconfig.load(Ordering::Relaxed));
        snap.power_watts = shared.features.value("SystemPower");

        let recorder = shared.recorder.lock().clone();
        if recorder.is_enabled() {
            for (path, stats) in &snap.tasks {
                recorder.record(TraceEvent::TaskStatsSample {
                    path: path.clone(),
                    stats: *stats,
                });
            }
            recorder.record(TraceEvent::QueueSample { queue: snap.queue });
        }
        snap
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn monitor() -> Monitor {
        Monitor::new(Duration::from_secs(10), 0.25, FeatureRegistry::new())
    }

    #[test]
    fn records_invocations_and_exec_time() {
        let m = monitor();
        let path: TaskPath = "0.1".parse().unwrap();
        let stats = m.stats_for(&path);
        let now = Instant::now();
        stats.record(Duration::from_millis(10), now, Duration::from_secs(10));
        stats.record(Duration::from_millis(30), now, Duration::from_secs(10));
        m.install_epoch(Vec::new(), HashMap::from([(path.clone(), 2)]));
        let snap = m.snapshot();
        let ts = snap.task(&path).unwrap();
        assert_eq!(ts.invocations, 2);
        assert!(ts.mean_exec_secs > 0.009 && ts.mean_exec_secs < 0.031);
        assert!(ts.throughput > 0.0);
    }

    #[test]
    fn load_callbacks_sum_across_replicas() {
        let m = monitor();
        let path: TaskPath = "0".parse().unwrap();
        let _ = m.stats_for(&path);
        m.install_epoch(
            vec![
                (path.clone(), Arc::new(|| 2.0)),
                (path.clone(), Arc::new(|| 3.0)),
            ],
            HashMap::from([(path.clone(), 2)]),
        );
        let snap = m.snapshot();
        assert_eq!(snap.task(&path).unwrap().load, 5.0);
    }

    #[test]
    fn queue_probe_feeds_snapshot() {
        let m = monitor();
        m.set_queue_probe(|| QueueStats {
            occupancy: 7.0,
            arrival_rate: 2.0,
            enqueued: 10,
            completed: 3,
        });
        let snap = m.snapshot();
        assert_eq!(snap.queue.occupancy, 7.0);
        assert_eq!(snap.dispatches_since_reconfig, 3);
        m.mark_reconfig();
        assert_eq!(m.snapshot().dispatches_since_reconfig, 0);
    }

    #[test]
    fn power_feature_appears_in_snapshot() {
        let features = FeatureRegistry::new();
        features.register("SystemPower", || 612.5);
        let m = Monitor::new(Duration::from_secs(5), 0.25, features);
        assert_eq!(m.snapshot().power_watts, Some(612.5));
    }

    #[test]
    fn snapshot_emits_samples_into_an_attached_recorder() {
        let m = monitor();
        let path: TaskPath = "0".parse().unwrap();
        let stats = m.stats_for(&path);
        stats.record(
            Duration::from_millis(5),
            Instant::now(),
            Duration::from_secs(10),
        );
        m.install_epoch(Vec::new(), HashMap::from([(path, 1)]));
        let recorder = Recorder::bounded(16);
        m.set_recorder(recorder.clone());
        let _ = m.snapshot();
        let kinds: Vec<&str> = recorder.records().iter().map(|r| r.event.kind()).collect();
        assert_eq!(kinds, ["TaskStatsSample", "QueueSample"]);
    }

    #[test]
    fn same_path_shares_cell() {
        let m = monitor();
        let p: TaskPath = "1".parse().unwrap();
        let a = m.stats_for(&p);
        let b = m.stats_for(&p);
        a.record(
            Duration::from_millis(1),
            Instant::now(),
            Duration::from_secs(1),
        );
        assert_eq!(b.invocations.load(Ordering::Relaxed), 1);
    }
}
