//! The DoPE run-time system.
//!
//! This crate is the live counterpart of the paper's user-land runtime:
//! it executes a declared task nest ([`TaskSpec`](dope_core::TaskSpec)
//! tree) on a real worker pool, monitors application and platform
//! features, and drives the suspend/relaunch protocol (paper §6) whenever
//! the selected [`Mechanism`](dope_core::Mechanism) proposes a new
//! parallelism configuration:
//!
//! 1. the mechanism determines the optimal configuration;
//! 2. the executive returns `SUSPEND` from `begin`/`end`;
//! 3. tasks steer into a consistent state (their `fini` callbacks run);
//! 4. the executive instantiates the new task set;
//! 5. the worker pool executes it.
//!
//! # Example
//!
//! ```
//! use dope_core::{body_fn, Goal, TaskKind, TaskSpec, TaskStatus, WorkerSlot};
//! use dope_runtime::Dope;
//! use std::sync::atomic::{AtomicU64, Ordering};
//! use std::sync::Arc;
//!
//! let counter = Arc::new(AtomicU64::new(0));
//! let c = Arc::clone(&counter);
//! let spec = TaskSpec::leaf("count", TaskKind::Par, move |_slot: WorkerSlot| {
//!     let c = Arc::clone(&c);
//!     Box::new(body_fn(move |cx| {
//!         cx.begin();
//!         let n = c.fetch_add(1, Ordering::Relaxed);
//!         cx.end();
//!         if n >= 99 {
//!             TaskStatus::Finished
//!         } else {
//!             TaskStatus::Executing
//!         }
//!     })) as Box<dyn dope_core::TaskBody>
//! });
//!
//! let dope = Dope::builder(Goal::MaxThroughput { threads: 2 })
//!     .launch(vec![spec])
//!     .unwrap();
//! let report = dope.wait().unwrap();
//! assert!(counter.load(Ordering::Relaxed) >= 100);
//! assert!(report.elapsed.as_nanos() > 0);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod executive;
pub mod instance;
mod lockrank;
pub mod monitor;
pub mod perf;
pub mod pool;
mod shard;

pub use executive::{Dope, DopeBuilder, RunReport};
pub use monitor::Monitor;
pub use pool::WorkerPool;
