//! Debug-only lock-rank enforcement: the dynamic half of DL004.
//!
//! `crates/dope-lint/lock-order.txt` declares a total acquisition order
//! over the runtime's locks, and `dope-lint` checks it statically. This
//! module enforces the same order at runtime in debug builds: every
//! runtime lock is a [`RankedMutex`] carrying its manifest rank, each
//! acquisition pushes onto a thread-local stack of held ranks, and
//! acquiring a rank less than or equal to the current top panics with
//! both lock names. The static pass catches what it can see; this guard
//! catches what it can't (acquisition paths through closures, trait
//! objects, or callbacks the lexer-level call graph cannot follow).
//!
//! Release builds compile all bookkeeping out: a [`RankedMutex`] is a
//! `parking_lot::Mutex` plus two words of identity, and `lock()` is a
//! plain acquisition.

use std::ops::{Deref, DerefMut};

use parking_lot::{Mutex, MutexGuard};

/// Lock ranks, mirroring `crates/dope-lint/lock-order.txt` — the
/// manifest is the source of truth; these constants must match it.
pub(crate) mod rank {
    /// `MonitorShared::paths`.
    pub const PATHS: u32 = 10;
    /// `MonitorShared::epoch` (load callbacks, extents, failure marks —
    /// installed and read together).
    pub const EPOCH: u32 = 20;
    /// `MonitorShared::queue_probe`.
    pub const QUEUE_PROBE: u32 = 40;
    /// `MonitorShared::admission_probe`.
    pub const ADMISSION_PROBE: u32 = 50;
    /// `MonitorShared::recorder`.
    pub const RECORDER: u32 = 60;
    /// `PathStats::shards` (the per-path shard list; the shards
    /// themselves are lock-free).
    pub const SHARDS: u32 = 70;
    /// `MonitorShared::metrics`.
    pub const METRICS: u32 = 80;
}

#[cfg(debug_assertions)]
thread_local! {
    /// Ranks (and names, for diagnostics) of the locks this thread
    /// currently holds, in acquisition order.
    static HELD: std::cell::RefCell<Vec<(u32, &'static str)>> =
        const { std::cell::RefCell::new(Vec::new()) };

    /// Ranked-lock acquisitions this thread has ever performed. Lets
    /// tests assert a code path is lock-free (the sharded record path's
    /// zero-acquisition contract) instead of trusting a comment.
    static ACQUISITIONS: std::cell::Cell<u64> = const { std::cell::Cell::new(0) };
}

/// Total [`RankedMutex`] acquisitions performed by the calling thread so
/// far (debug builds only; always 0 in release builds, where the
/// bookkeeping is compiled out). Lets tests assert a code path is
/// lock-free instead of trusting a comment.
#[cfg(test)]
pub(crate) fn acquisitions_on_this_thread() -> u64 {
    #[cfg(debug_assertions)]
    {
        ACQUISITIONS.with(std::cell::Cell::get)
    }
    #[cfg(not(debug_assertions))]
    {
        0
    }
}

/// A `parking_lot::Mutex` that knows its place in the lock order.
pub(crate) struct RankedMutex<T> {
    rank: u32,
    name: &'static str,
    raw: Mutex<T>,
}

impl<T> RankedMutex<T> {
    /// Wraps `value` in a mutex of the given manifest rank and name.
    pub(crate) fn new(rank: u32, name: &'static str, value: T) -> Self {
        RankedMutex {
            rank,
            name,
            raw: Mutex::new(value),
        }
    }

    /// Acquires the mutex.
    ///
    /// # Panics
    ///
    /// In debug builds, panics if this thread already holds a lock of
    /// equal (re-entrant) or higher rank — the inversion a release
    /// build would deadlock on some interleaving of.
    pub(crate) fn lock(&self) -> RankedGuard<'_, T> {
        #[cfg(debug_assertions)]
        ACQUISITIONS.with(|count| count.set(count.get() + 1));
        #[cfg(debug_assertions)]
        HELD.with(|held| {
            let mut held = held.borrow_mut();
            if let Some(&(top_rank, top_name)) = held.last() {
                assert!(
                    self.rank > top_rank,
                    "lock-order violation: acquiring `{}` (rank {}) while holding \
                     `{top_name}` (rank {top_rank}) — ranks must strictly ascend; \
                     see crates/dope-lint/lock-order.txt",
                    self.name,
                    self.rank,
                );
            }
            held.push((self.rank, self.name));
        });
        RankedGuard {
            guard: self.raw.lock(),
            #[cfg(debug_assertions)]
            mutex: self,
        }
    }
}

impl<T: std::fmt::Debug> std::fmt::Debug for RankedMutex<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RankedMutex")
            .field("name", &self.name)
            .field("rank", &self.rank)
            .field("value", &self.raw)
            .finish()
    }
}

/// RAII guard of a [`RankedMutex`]; releasing pops the held-rank stack.
pub(crate) struct RankedGuard<'a, T> {
    guard: MutexGuard<'a, T>,
    #[cfg(debug_assertions)]
    mutex: &'a RankedMutex<T>,
}

impl<T> Deref for RankedGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.guard
    }
}

impl<T> DerefMut for RankedGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.guard
    }
}

impl<T> Drop for RankedGuard<'_, T> {
    fn drop(&mut self) {
        // Guards may be released out of LIFO order (ascending
        // acquisition does not require nested release), so pop the
        // matching entry wherever it sits.
        #[cfg(debug_assertions)]
        HELD.with(|held| {
            let mut held = held.borrow_mut();
            if let Some(pos) = held
                .iter()
                .rposition(|&(r, n)| r == self.mutex.rank && n == self.mutex.name)
            {
                held.remove(pos);
            }
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ascending_acquisition_is_fine() {
        let a = RankedMutex::new(10, "a", 1u32);
        let b = RankedMutex::new(20, "b", 2u32);
        let ga = a.lock();
        let gb = b.lock();
        assert_eq!(*ga + *gb, 3);
    }

    #[test]
    fn out_of_lifo_release_unwinds_correctly() {
        let a = RankedMutex::new(10, "a", ());
        let b = RankedMutex::new(20, "b", ());
        let c = RankedMutex::new(30, "c", ());
        let ga = a.lock();
        let gb = b.lock();
        drop(ga); // release the outer lock first
        let gc = c.lock(); // still ascending from `b`
        drop(gb);
        drop(gc);
        // The stack is empty again: rank 10 is acquirable.
        let _ga = a.lock();
    }

    #[test]
    #[cfg_attr(
        not(debug_assertions),
        ignore = "rank checking is compiled out in release builds"
    )]
    #[should_panic(expected = "lock-order violation")]
    fn descending_acquisition_panics_in_debug() {
        let a = RankedMutex::new(10, "a", ());
        let b = RankedMutex::new(20, "b", ());
        let _gb = b.lock();
        let _ga = a.lock();
    }

    #[test]
    #[cfg_attr(
        not(debug_assertions),
        ignore = "rank checking is compiled out in release builds"
    )]
    #[should_panic(expected = "lock-order violation")]
    fn reentrant_acquisition_panics_in_debug() {
        let a = RankedMutex::new(10, "a", ());
        let _first = a.lock();
        let _second = a.lock();
    }

    #[test]
    #[cfg_attr(
        not(debug_assertions),
        ignore = "the acquisition counter is compiled out in release builds"
    )]
    fn acquisition_counter_advances_per_lock() {
        let m = RankedMutex::new(10, "a", ());
        let before = acquisitions_on_this_thread();
        drop(m.lock());
        drop(m.lock());
        assert_eq!(acquisitions_on_this_thread(), before + 2);
    }

    #[test]
    fn guards_deref_to_the_value() {
        let m = RankedMutex::new(10, "a", vec![1, 2]);
        m.lock().push(3);
        assert_eq!(*m.lock(), vec![1, 2, 3]);
        assert!(format!("{m:?}").contains("rank"));
    }
}
