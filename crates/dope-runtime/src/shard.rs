//! Per-worker monitoring shards: the contention-free task-completion
//! record path.
//!
//! Every pool worker that executes a task path owns a private
//! [`RecorderShard`]. Recording a completed `begin`..`end` interval
//! touches only that shard — a handful of arithmetic operations on
//! cache lines no other writer shares, and **zero lock acquisitions**
//! (enforced by `lockrank::acquisitions_on_this_thread` in the
//! `record_path_acquires_no_locks` test). The monitor thread merges all
//! of a path's shards into one view at snapshot or scrape time.
//!
//! # Single-writer discipline and memory ordering
//!
//! A shard has exactly one writer: shards are keyed by `ThreadId`, a
//! pool worker runs one job at a time, and a job drives one `LiveCx`.
//! Every field is therefore written by one thread and read by another
//! (the monitor), which is why plain `Relaxed` loads and stores are
//! enough:
//!
//! * **Writer side** — each store is a private read-modify-write; there
//!   is no competing writer to order against, so no compare-and-swap
//!   and no `Release` fences are needed on the per-record path.
//! * **Reader side** — the monitor discovers a shard by locking the
//!   path's shard list; the lock acquisition that *published* the shard
//!   synchronizes-with the monitor's acquisition, so the shard's
//!   initialized state is visible. Counts read afterwards are `Relaxed`
//!   and may trail the writer by a few operations — the same
//!   approximately-consistent contract Prometheus scrapes already have.
//!   Nothing is ever torn: every cell is a single `AtomicU64`, and the
//!   completion ring packs `(tick, count)` into one word so a slot is
//!   read atomically.
//!
//! The EWMA and the completion ring *rely* on the single-writer
//! invariant (their load-then-store sequences would lose updates under
//! concurrent writers); the counters and the histogram are `fetch_add`
//! based and merely become contention-free under it.

use dope_core::Ewma;
use dope_metrics::{Histogram, LocalHistogram};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Slots in the completion ring. One ring spans one throughput window,
/// so each slot covers `window / RING_SLOTS` — the quantization error of
/// the recent-completions count is bounded by one slot (~3 % of the
/// window).
pub(crate) const RING_SLOTS: u64 = 32;

/// Self-accounting sample rate: every `OVERHEAD_SAMPLE`-th record call
/// is timed (one extra clock read) and charged at `OVERHEAD_SAMPLE`
/// times its cost. Timing every call would cost more than the call.
const OVERHEAD_SAMPLE: u64 = 64;

/// `f64` bit pattern marking "no EWMA sample yet" (NaN never appears as
/// a real EWMA value: samples are finite durations).
const EWMA_EMPTY: u64 = f64::NAN.to_bits();

/// One worker's private measurement state for one task path.
#[derive(Debug)]
pub(crate) struct RecorderShard {
    /// Smoothing factor of the per-shard execution-time EWMA.
    alpha: f64,
    /// The owning `PathStats` cell's creation instant — the shared
    /// anchor all shards of a path quantize ring ticks against.
    created: Instant,
    invocations: AtomicU64,
    busy_nanos: AtomicU64,
    /// Current EWMA of execution seconds as `f64` bits ([`EWMA_EMPTY`]
    /// before the first sample). Single-writer: load/modify/store.
    ewma_bits: AtomicU64,
    /// Completion ring: slot `tick % RING_SLOTS` packs
    /// `(tick as u32) << 32 | count`. Single-writer: load/modify/store.
    ring: [AtomicU64; RING_SLOTS as usize],
    /// Per-shard execution-latency histogram; uncontended `fetch_add`s.
    exec_hist: Histogram,
    /// The monitor-wide self-overhead accumulator (nanoseconds), shared
    /// across every shard and the snapshot path.
    overhead_nanos: Arc<AtomicU64>,
}

/// Nanoseconds per ring slot for `window` (at least 1 to avoid division
/// by zero on degenerate windows).
fn slot_width_nanos(window: Duration) -> u64 {
    ((window.as_nanos() / u128::from(RING_SLOTS)) as u64).max(1)
}

fn pack(tick: u64, count: u64) -> u64 {
    ((tick & 0xffff_ffff) << 32) | (count & 0xffff_ffff)
}

fn unpack(word: u64) -> (u64, u64) {
    (word >> 32, word & 0xffff_ffff)
}

impl RecorderShard {
    pub(crate) fn new(alpha: f64, created: Instant, overhead_nanos: Arc<AtomicU64>) -> Self {
        RecorderShard {
            alpha,
            created,
            invocations: AtomicU64::new(0),
            busy_nanos: AtomicU64::new(0),
            ewma_bits: AtomicU64::new(EWMA_EMPTY),
            ring: std::array::from_fn(|_| AtomicU64::new(0)),
            exec_hist: Histogram::new(),
            overhead_nanos,
        }
    }

    fn elapsed_nanos(&self, now: Instant) -> u64 {
        u64::try_from(now.saturating_duration_since(self.created).as_nanos()).unwrap_or(u64::MAX)
    }

    /// Records one completed `begin`..`end` interval. Lock-free: plain
    /// relaxed atomic arithmetic on this shard's private cache lines.
    ///
    /// Every [`OVERHEAD_SAMPLE`]-th call additionally charges the
    /// monitor's self-overhead meter with a sampled estimate of the
    /// record cost.
    pub(crate) fn record(&self, exec: Duration, now: Instant, window: Duration) {
        let nanos = u64::try_from(exec.as_nanos()).unwrap_or(u64::MAX);
        let sampled = self
            .invocations
            .fetch_add(1, Ordering::Relaxed)
            .is_multiple_of(OVERHEAD_SAMPLE);
        self.busy_nanos.fetch_add(nanos, Ordering::Relaxed);
        self.exec_hist.record_nanos(nanos);

        // EWMA fold: single-writer load/modify/store.
        let prev = f64::from_bits(self.ewma_bits.load(Ordering::Relaxed));
        let prev = if prev.is_nan() { None } else { Some(prev) };
        let next = Ewma::fold(self.alpha, prev, exec.as_secs_f64());
        self.ewma_bits.store(next.to_bits(), Ordering::Relaxed);

        // Completion ring: bump the current tick's slot, or claim it if
        // it still holds a tick from a previous lap.
        let tick = self.elapsed_nanos(now) / slot_width_nanos(window);
        let slot = &self.ring[(tick % RING_SLOTS) as usize];
        let (stored_tick, count) = unpack(slot.load(Ordering::Relaxed));
        let count = if stored_tick == (tick & 0xffff_ffff) {
            (count + 1).min(0xffff_ffff)
        } else {
            1
        };
        slot.store(pack(tick, count), Ordering::Relaxed);

        if sampled {
            let spent = Instant::now().saturating_duration_since(now);
            let charge = u64::try_from(spent.as_nanos()).unwrap_or(u64::MAX);
            self.overhead_nanos
                .fetch_add(charge.saturating_mul(OVERHEAD_SAMPLE), Ordering::Relaxed);
        }
    }

    /// Completions recorded within the trailing `window` ending at
    /// `now`, quantized to ring slots (error at most one slot width).
    pub(crate) fn recent_completions(&self, now: Instant, window: Duration) -> u64 {
        let slot_w = slot_width_nanos(window);
        let now_tick = self.elapsed_nanos(now) / slot_w;
        let oldest = now_tick.saturating_sub(RING_SLOTS - 1);
        let mut total = 0;
        for (i, slot) in self.ring.iter().enumerate() {
            let (stored_lo, count) = unpack(slot.load(Ordering::Relaxed));
            if count == 0 {
                continue;
            }
            // The only tick in [oldest, now_tick] mapping to slot `i`.
            let lag = (now_tick % RING_SLOTS + RING_SLOTS - i as u64) % RING_SLOTS;
            let candidate = now_tick.saturating_sub(lag);
            if candidate >= oldest && (candidate & 0xffff_ffff) == stored_lo {
                total += count;
            }
        }
        total
    }

    /// Completed invocations recorded into this shard.
    pub(crate) fn invocations(&self) -> u64 {
        self.invocations.load(Ordering::Relaxed)
    }

    /// Accumulated `begin`..`end` work nanoseconds.
    pub(crate) fn busy_nanos(&self) -> u64 {
        self.busy_nanos.load(Ordering::Relaxed)
    }

    /// This shard's execution-time EWMA, `None` before any record.
    pub(crate) fn ewma_secs(&self) -> Option<f64> {
        let bits = self.ewma_bits.load(Ordering::Relaxed);
        let value = f64::from_bits(bits);
        if value.is_nan() {
            None
        } else {
            Some(value)
        }
    }

    /// A point-in-time copy of this shard's latency histogram.
    pub(crate) fn local_hist(&self) -> LocalHistogram {
        self.exec_hist.to_local()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn shard() -> RecorderShard {
        RecorderShard::new(0.25, Instant::now(), Arc::new(AtomicU64::new(0)))
    }

    fn record(s: &RecorderShard, exec: Duration, now: Instant, window: Duration) {
        s.record(exec, now, window);
    }

    #[test]
    fn counts_and_busy_accumulate() {
        let s = shard();
        let now = Instant::now();
        let w = Duration::from_secs(10);
        record(&s, Duration::from_millis(2), now, w);
        record(&s, Duration::from_millis(3), now, w);
        assert_eq!(s.invocations(), 2);
        assert_eq!(s.busy_nanos(), 5_000_000);
        assert_eq!(s.local_hist().count(), 2);
    }

    #[test]
    fn ewma_matches_the_struct_fold() {
        let s = shard();
        let now = Instant::now();
        let w = Duration::from_secs(10);
        let mut reference = Ewma::new(0.25);
        for ms in [10u64, 30, 20, 5] {
            record(&s, Duration::from_millis(ms), now, w);
            reference.update(ms as f64 / 1e3);
        }
        assert_eq!(s.ewma_secs(), reference.value());
    }

    #[test]
    fn ring_counts_recent_and_ages_out() {
        let s = shard();
        let w = Duration::from_secs(10);
        let recording = s.created + Duration::from_secs(1);
        for _ in 0..50 {
            record(&s, Duration::from_micros(10), recording, w);
        }
        assert_eq!(s.recent_completions(recording, w), 50);
        // Two windows later every completion has aged out — including
        // the slot the stale tick still physically occupies.
        let later = s.created + Duration::from_secs(20);
        assert_eq!(s.recent_completions(later, w), 0);
    }

    #[test]
    fn ring_laps_reclaim_stale_slots() {
        let s = shard();
        let w = Duration::from_secs(32); // 1 s slots
        let early = s.created + Duration::from_secs(1);
        record(&s, Duration::from_micros(1), early, w);
        // One full lap later the same slot index is reused: the stale
        // count must be replaced, not added to.
        let lap = s.created + Duration::from_secs(33);
        record(&s, Duration::from_micros(1), lap, w);
        assert_eq!(s.recent_completions(lap, w), 1);
    }

    #[test]
    fn overhead_sampling_charges_the_meter() {
        let overhead = Arc::new(AtomicU64::new(0));
        let s = RecorderShard::new(0.25, Instant::now(), Arc::clone(&overhead));
        let w = Duration::from_secs(10);
        // The very first record is sampled (invocation count 0).
        s.record(Duration::from_millis(1), Instant::now(), w);
        assert!(overhead.load(Ordering::Relaxed) > 0);
    }
}
