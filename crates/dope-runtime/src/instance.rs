//! Instantiation of a task nest under a concrete configuration, and the
//! live task context workers run with.

use crate::monitor::Monitor;
use crate::shard::RecorderShard;
use dope_core::{
    Config, Directive, Error, Result, TaskBody, TaskConfig, TaskCx, TaskPath, TaskSpec, Work,
    WorkerSlot,
};
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// One worker's assignment for an epoch: a body plus its coordinates.
pub(crate) struct WorkerJob {
    pub path: TaskPath,
    pub slot: WorkerSlot,
    pub body: Box<dyn TaskBody>,
}

impl std::fmt::Debug for WorkerJob {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WorkerJob")
            .field("path", &self.path)
            .field("slot", &self.slot)
            .finish_non_exhaustive()
    }
}

/// Everything instantiated for one epoch.
#[derive(Default)]
pub(crate) struct Epoch {
    pub jobs: Vec<WorkerJob>,
    pub load_cbs: Vec<(TaskPath, Arc<dyn Fn() -> f64 + Send + Sync>)>,
    pub extents: HashMap<TaskPath, u32>,
}

impl std::fmt::Debug for Epoch {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Epoch")
            .field("jobs", &self.jobs.len())
            .field("load_cbs", &self.load_cbs.len())
            .finish_non_exhaustive()
    }
}

/// Builds the worker jobs for `specs` under `config`.
///
/// Each replica of a nested task instantiates a *fresh* inner descriptor
/// (fresh queues, fresh accumulators); the descriptor's names and kinds
/// must match the shape derived from replica zero.
pub(crate) fn instantiate(specs: &[TaskSpec], config: &Config) -> Result<Epoch> {
    let mut epoch = Epoch::default();
    instantiate_level(specs, &config.tasks, &TaskPath::root(), &mut epoch)?;
    Ok(epoch)
}

fn instantiate_level(
    specs: &[TaskSpec],
    configs: &[TaskConfig],
    prefix: &TaskPath,
    epoch: &mut Epoch,
) -> Result<()> {
    if specs.len() != configs.len() {
        return Err(Error::ShapeMismatch {
            path: prefix.clone(),
            detail: format!(
                "descriptor has {} tasks but configuration has {}",
                specs.len(),
                configs.len()
            ),
        });
    }
    for (i, (spec, cfg)) in specs.iter().zip(configs).enumerate() {
        let path = prefix.child(i as u16);
        if spec.name() != cfg.name {
            return Err(Error::ShapeMismatch {
                path,
                detail: format!("expected `{}`, found `{}`", spec.name(), cfg.name),
            });
        }
        *epoch.extents.entry(path.clone()).or_insert(0) += cfg.extent;
        if let Some(cb) = spec.load_cb() {
            epoch.load_cbs.push((path.clone(), Arc::clone(cb)));
        }
        match (spec.work(), &cfg.nested) {
            (Work::Leaf(factory), None) => {
                for worker in 0..cfg.extent {
                    let slot = WorkerSlot {
                        replica: 0,
                        worker,
                        extent: cfg.extent,
                    };
                    epoch.jobs.push(WorkerJob {
                        path: path.clone(),
                        slot,
                        body: factory.make_body(slot),
                    });
                }
            }
            (Work::Nest(alts), Some(nest)) => {
                let factory =
                    alts.get(nest.alternative)
                        .ok_or_else(|| Error::UnknownAlternative {
                            path: path.clone(),
                            requested: nest.alternative,
                            available: alts.len(),
                        })?;
                for replica in 0..cfg.extent {
                    let inner = factory.make_nest(replica);
                    instantiate_replica(&inner, &nest.tasks, &path, replica, epoch)?;
                }
            }
            (Work::Leaf(_), Some(_)) => {
                return Err(Error::ShapeMismatch {
                    path,
                    detail: "configuration nests a leaf task".to_string(),
                })
            }
            (Work::Nest(_), None) => {
                return Err(Error::ShapeMismatch {
                    path,
                    detail: "configuration treats a nested task as a leaf".to_string(),
                })
            }
        }
    }
    Ok(())
}

/// Builds worker jobs for *only* the top-level leaf tasks named by
/// `paths` — the relaunch half of a partial (delta) reconfiguration.
///
/// Delta eligibility is decided by `Config::delta_paths` before this is
/// called, but the invariant is re-checked here: every path must be a
/// depth-one leaf in both the descriptor and the configuration, because
/// nested replicas are instantiated as a unit (`make_nest`) and cannot
/// be relaunched piecemeal.
pub(crate) fn instantiate_paths(
    specs: &[TaskSpec],
    config: &Config,
    paths: &[TaskPath],
) -> Result<Epoch> {
    let mut epoch = Epoch::default();
    for path in paths {
        let mut indices = path.indices();
        let (Some(index), None) = (indices.next(), indices.next()) else {
            return Err(Error::ShapeMismatch {
                path: path.clone(),
                detail: "partial relaunch supports top-level leaf tasks only".to_string(),
            });
        };
        let (Some(spec), Some(cfg)) = (specs.get(index as usize), config.tasks.get(index as usize))
        else {
            return Err(Error::UnknownPath { path: path.clone() });
        };
        if spec.name() != cfg.name {
            return Err(Error::ShapeMismatch {
                path: path.clone(),
                detail: format!("expected `{}`, found `{}`", spec.name(), cfg.name),
            });
        }
        let (Work::Leaf(factory), None) = (spec.work(), &cfg.nested) else {
            return Err(Error::ShapeMismatch {
                path: path.clone(),
                detail: "partial relaunch supports top-level leaf tasks only".to_string(),
            });
        };
        epoch.extents.insert(path.clone(), cfg.extent);
        if let Some(cb) = spec.load_cb() {
            epoch.load_cbs.push((path.clone(), Arc::clone(cb)));
        }
        for worker in 0..cfg.extent {
            let slot = WorkerSlot {
                replica: 0,
                worker,
                extent: cfg.extent,
            };
            epoch.jobs.push(WorkerJob {
                path: path.clone(),
                slot,
                body: factory.make_body(slot),
            });
        }
    }
    Ok(epoch)
}

/// Like [`instantiate_level`] but tags jobs with the replica index.
fn instantiate_replica(
    specs: &[TaskSpec],
    configs: &[TaskConfig],
    prefix: &TaskPath,
    replica: u32,
    epoch: &mut Epoch,
) -> Result<()> {
    if specs.len() != configs.len() {
        return Err(Error::ShapeMismatch {
            path: prefix.clone(),
            detail: "replica descriptor arity differs from shape".to_string(),
        });
    }
    for (i, (spec, cfg)) in specs.iter().zip(configs).enumerate() {
        let path = prefix.child(i as u16);
        if spec.name() != cfg.name {
            return Err(Error::ShapeMismatch {
                path,
                detail: format!(
                    "replica {replica}: expected `{}`, found `{}`",
                    cfg.name,
                    spec.name()
                ),
            });
        }
        *epoch.extents.entry(path.clone()).or_insert(0) += cfg.extent;
        if let Some(cb) = spec.load_cb() {
            epoch.load_cbs.push((path.clone(), Arc::clone(cb)));
        }
        match (spec.work(), &cfg.nested) {
            (Work::Leaf(factory), None) => {
                for worker in 0..cfg.extent {
                    let slot = WorkerSlot {
                        replica,
                        worker,
                        extent: cfg.extent,
                    };
                    epoch.jobs.push(WorkerJob {
                        path: path.clone(),
                        slot,
                        body: factory.make_body(slot),
                    });
                }
            }
            (Work::Nest(alts), Some(nest)) => {
                let factory =
                    alts.get(nest.alternative)
                        .ok_or_else(|| Error::UnknownAlternative {
                            path: path.clone(),
                            requested: nest.alternative,
                            available: alts.len(),
                        })?;
                for inner_replica in 0..cfg.extent {
                    let inner = factory.make_nest(inner_replica);
                    instantiate_replica(&inner, &nest.tasks, &path, inner_replica, epoch)?;
                }
            }
            _ => {
                return Err(Error::ShapeMismatch {
                    path,
                    detail: "replica structure differs from configuration".to_string(),
                })
            }
        }
    }
    Ok(())
}

/// The live [`TaskCx`]: timers into the monitor plus the epoch's suspend
/// flags.
///
/// Suspension is the union of two signals: the *global* flag (stop and
/// full-drain reconfigurations park every replica) and this job's
/// *per-path* flag (a partial reconfiguration parks only the paths whose
/// extent changed, leaving the rest of the nest running).
///
/// Construction resolves the calling worker thread's private
/// [`RecorderShard`] once (the only locking step); every `begin`..`end`
/// interval afterwards is recorded straight into the shard with zero
/// lock acquisitions.
pub(crate) struct LiveCx {
    suspend: Arc<AtomicBool>,
    path_suspend: Arc<AtomicBool>,
    shard: Arc<RecorderShard>,
    window: Duration,
    slot: WorkerSlot,
    began: Option<Instant>,
}

impl LiveCx {
    /// Must be called on the worker thread that will run the task body:
    /// the resolved shard is keyed by the calling thread's id, and its
    /// single-writer contract assumes that thread does the recording.
    pub fn new(
        monitor: &Monitor,
        suspend: Arc<AtomicBool>,
        path_suspend: Arc<AtomicBool>,
        path: &TaskPath,
        slot: WorkerSlot,
        window: Duration,
    ) -> Self {
        LiveCx {
            suspend,
            path_suspend,
            shard: monitor.stats_for(path).shard(),
            window,
            slot,
            began: None,
        }
    }

    fn current_directive(&self) -> Directive {
        if self.suspend.load(Ordering::Acquire) || self.path_suspend.load(Ordering::Acquire) {
            Directive::Suspend
        } else {
            Directive::Continue
        }
    }
}

impl TaskCx for LiveCx {
    fn begin(&mut self) -> Directive {
        self.began = Some(Instant::now());
        self.current_directive()
    }

    fn end(&mut self) -> Directive {
        if let Some(t0) = self.began.take() {
            let now = Instant::now();
            self.shard.record(now - t0, now, self.window);
        }
        self.current_directive()
    }

    fn directive(&self) -> Directive {
        self.current_directive()
    }

    fn replica(&self) -> u32 {
        self.slot.replica
    }

    fn worker(&self) -> u32 {
        self.slot.worker
    }

    fn extent(&self) -> u32 {
        self.slot.extent
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dope_core::{body_fn, Config, TaskKind, TaskStatus};
    use dope_platform::FeatureRegistry;

    fn leaf(name: &str, kind: TaskKind) -> TaskSpec {
        TaskSpec::leaf(name, kind, |_slot: WorkerSlot| {
            Box::new(body_fn(|_| TaskStatus::Finished)) as Box<dyn TaskBody>
        })
    }

    #[test]
    fn leaf_instantiation_creates_extent_jobs() {
        let specs = vec![leaf("a", TaskKind::Par), leaf("b", TaskKind::Seq)];
        let config = Config::new(vec![TaskConfig::leaf("a", 3), TaskConfig::leaf("b", 1)]);
        let epoch = instantiate(&specs, &config).unwrap();
        assert_eq!(epoch.jobs.len(), 4);
        let a_workers: Vec<u32> = epoch
            .jobs
            .iter()
            .filter(|j| j.path.to_string() == "0")
            .map(|j| j.slot.worker)
            .collect();
        assert_eq!(a_workers, vec![0, 1, 2]);
    }

    #[test]
    fn nest_instantiation_creates_fresh_replicas() {
        use std::sync::atomic::AtomicU32;
        let made = Arc::new(AtomicU32::new(0));
        let made2 = Arc::clone(&made);
        let spec = TaskSpec::nest("outer", TaskKind::Par, move |_replica: u32| {
            made2.fetch_add(1, Ordering::SeqCst);
            vec![leaf("inner", TaskKind::Par)]
        });
        let config = Config::new(vec![TaskConfig::nest(
            "outer",
            3,
            0,
            vec![TaskConfig::leaf("inner", 2)],
        )]);
        let epoch = instantiate(&[spec], &config).unwrap();
        assert_eq!(made.load(Ordering::SeqCst), 3, "one nest per replica");
        assert_eq!(epoch.jobs.len(), 6, "3 replicas x 2 workers");
        assert_eq!(epoch.extents.get(&"0.0".parse().unwrap()), Some(&6));
        assert_eq!(epoch.extents.get(&"0".parse().unwrap()), Some(&3));
    }

    #[test]
    fn name_mismatch_is_rejected() {
        let specs = vec![leaf("a", TaskKind::Par)];
        let config = Config::new(vec![TaskConfig::leaf("z", 1)]);
        assert!(matches!(
            instantiate(&specs, &config),
            Err(Error::ShapeMismatch { .. })
        ));
    }

    #[test]
    fn missing_alternative_is_rejected() {
        let spec = TaskSpec::nest("o", TaskKind::Par, |_r: u32| vec![leaf("i", TaskKind::Seq)]);
        let config = Config::new(vec![TaskConfig::nest(
            "o",
            1,
            5,
            vec![TaskConfig::leaf("i", 1)],
        )]);
        assert!(matches!(
            instantiate(&[spec], &config),
            Err(Error::UnknownAlternative { requested: 5, .. })
        ));
    }

    #[test]
    fn live_cx_records_and_suspends() {
        let monitor = Monitor::new(Duration::from_secs(5), 0.25, FeatureRegistry::new());
        let suspend = Arc::new(AtomicBool::new(false));
        let path_suspend = Arc::new(AtomicBool::new(false));
        let path: TaskPath = "0".parse().unwrap();
        let slot = WorkerSlot {
            replica: 0,
            worker: 0,
            extent: 1,
        };
        let mut cx = LiveCx::new(
            &monitor,
            Arc::clone(&suspend),
            Arc::clone(&path_suspend),
            &path,
            slot,
            Duration::from_secs(5),
        );
        assert_eq!(cx.begin(), Directive::Continue);
        assert_eq!(cx.end(), Directive::Continue);
        suspend.store(true, Ordering::Release);
        assert_eq!(cx.directive(), Directive::Suspend);
        assert_eq!(cx.begin(), Directive::Suspend);
        let snap = {
            use std::collections::HashMap;
            monitor.install_epoch(Vec::new(), HashMap::from([(path.clone(), 1)]));
            monitor.snapshot()
        };
        assert_eq!(snap.task(&path).unwrap().invocations, 1);
    }

    #[test]
    fn live_cx_path_flag_suspends_independently_of_the_global_flag() {
        let monitor = Monitor::new(Duration::from_secs(5), 0.25, FeatureRegistry::new());
        let suspend = Arc::new(AtomicBool::new(false));
        let path_suspend = Arc::new(AtomicBool::new(false));
        let path: TaskPath = "0".parse().unwrap();
        let slot = WorkerSlot {
            replica: 0,
            worker: 0,
            extent: 1,
        };
        let cx = LiveCx::new(
            &monitor,
            Arc::clone(&suspend),
            Arc::clone(&path_suspend),
            &path,
            slot,
            Duration::from_secs(5),
        );
        assert_eq!(cx.directive(), Directive::Continue);
        path_suspend.store(true, Ordering::Release);
        assert_eq!(
            cx.directive(),
            Directive::Suspend,
            "per-path flag must suspend without the global flag"
        );
        path_suspend.store(false, Ordering::Release);
        assert_eq!(
            cx.directive(),
            Directive::Continue,
            "clearing the per-path flag must resume the replica"
        );
    }

    #[test]
    fn instantiate_paths_builds_only_the_named_leaves() {
        let specs = vec![leaf("a", TaskKind::Par), leaf("b", TaskKind::Par)];
        let config = Config::new(vec![TaskConfig::leaf("a", 3), TaskConfig::leaf("b", 2)]);
        let target: TaskPath = "1".parse().unwrap();
        let epoch = instantiate_paths(&specs, &config, std::slice::from_ref(&target)).unwrap();
        assert_eq!(epoch.jobs.len(), 2, "only path 1's workers");
        assert!(epoch.jobs.iter().all(|j| j.path == target));
        assert_eq!(epoch.extents.get(&target), Some(&2));
        assert!(!epoch
            .extents
            .contains_key(&"0".parse::<TaskPath>().unwrap()));
    }

    #[test]
    fn instantiate_paths_rejects_nested_and_unknown_paths() {
        let nest = TaskSpec::nest("o", TaskKind::Par, |_r: u32| vec![leaf("i", TaskKind::Seq)]);
        let specs = vec![leaf("a", TaskKind::Par), nest];
        let config = Config::new(vec![
            TaskConfig::leaf("a", 1),
            TaskConfig::nest("o", 1, 0, vec![TaskConfig::leaf("i", 1)]),
        ]);
        // A nested path is not a top-level leaf.
        assert!(matches!(
            instantiate_paths(&specs, &config, &["1.0".parse().unwrap()]),
            Err(Error::ShapeMismatch { .. })
        ));
        // A top-level nest is not a leaf either.
        assert!(matches!(
            instantiate_paths(&specs, &config, &["1".parse().unwrap()]),
            Err(Error::ShapeMismatch { .. })
        ));
        // An out-of-range index is unknown.
        assert!(matches!(
            instantiate_paths(&specs, &config, &["7".parse().unwrap()]),
            Err(Error::UnknownPath { .. })
        ));
    }
}
