//! The stage-network model behind Figures 12–15.
//!
//! A pipeline application (ferret, dedup) is a chain of stages with
//! per-stage service times. Each stage has an extent (its worker count),
//! items flow stage to stage through queues, and a [`Mechanism`] is
//! consulted at a fixed control period. The model covers:
//!
//! * **task fusion** — a second descriptor alternative whose middle stages
//!   are merged, removing inter-stage forwarding overhead (TBF, §7.2);
//! * **oversubscription** — configurations with more workers than
//!   hardware contexts run, but services dilate by the oversubscription
//!   factor plus a context-switch penalty (the `Pthreads-OS` baseline);
//! * **power** — a [`PowerSensor`] samples a linear power model at the
//!   PDU's limited rate, feeding the TPC controller (§7.3, Figure 14).

use crate::event::OrdF64;
use dope_core::{
    Config, Ewma, Mechanism, MonitorSnapshot, ProgramShape, Resources, ShapeNode, TaskConfig,
    TaskKind, TaskPath, TaskStats,
};
use dope_platform::{PowerModel, PowerSensor};
use dope_workload::{ArrivalSchedule, ResponseStats, TimeSeries};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::cmp::Reverse;
use std::collections::{BinaryHeap, VecDeque};

/// Service profile of one pipeline stage.
#[derive(Debug, Clone, PartialEq)]
pub struct StageProfile {
    /// Stage name.
    pub name: String,
    /// Sequential or parallel stage.
    pub kind: TaskKind,
    /// Mean per-item service time, in seconds.
    pub mean_service_secs: f64,
    /// Cap on the stage's extent, if any.
    pub max_extent: Option<u32>,
}

impl StageProfile {
    /// A sequential stage.
    #[must_use]
    pub fn seq(name: &str, mean_service_secs: f64) -> Self {
        StageProfile {
            name: name.to_string(),
            kind: TaskKind::Seq,
            mean_service_secs,
            max_extent: Some(1),
        }
    }

    /// A parallel stage.
    #[must_use]
    pub fn par(name: &str, mean_service_secs: f64) -> Self {
        StageProfile {
            name: name.to_string(),
            kind: TaskKind::Par,
            mean_service_secs,
            max_extent: None,
        }
    }
}

/// A pipeline application model with optional fused alternative.
///
/// # Example
///
/// ```
/// use dope_sim::pipeline::{PipelineModel, StageProfile};
///
/// let ferret = PipelineModel::new(
///     "ferret",
///     vec![
///         StageProfile::seq("load", 0.002),
///         StageProfile::par("segment", 0.02),
///         StageProfile::par("extract", 0.03),
///         StageProfile::par("index", 0.08),
///         StageProfile::par("rank", 0.05),
///         StageProfile::seq("out", 0.002),
///     ],
/// );
/// assert_eq!(ferret.shape().tasks.len(), 1);
/// ```
#[derive(Debug, Clone)]
pub struct PipelineModel {
    name: String,
    alternatives: Vec<Vec<StageProfile>>,
    forward_overhead_secs: f64,
    shape: ProgramShape,
}

impl PipelineModel {
    /// A pipeline with a single (unfused) descriptor.
    ///
    /// # Panics
    ///
    /// Panics if `stages` is empty.
    #[must_use]
    pub fn new(name: &str, stages: Vec<StageProfile>) -> Self {
        assert!(!stages.is_empty(), "pipeline needs at least one stage");
        let mut model = PipelineModel {
            name: name.to_string(),
            alternatives: vec![stages],
            forward_overhead_secs: 0.0,
            shape: ProgramShape::new(vec![]),
        };
        model.rebuild_shape();
        model
    }

    /// Registers a fused descriptor alternative (the paper's developer-
    /// provided fused task).
    #[must_use]
    pub fn with_fused(mut self, stages: Vec<StageProfile>) -> Self {
        assert!(!stages.is_empty(), "fused descriptor needs stages");
        self.alternatives.push(stages);
        self.rebuild_shape();
        self
    }

    /// Sets the per-boundary forwarding overhead added to every item's
    /// service at each stage after the first.
    #[must_use]
    pub fn with_forward_overhead(mut self, secs: f64) -> Self {
        assert!(secs >= 0.0, "overhead must be non-negative");
        self.forward_overhead_secs = secs;
        self
    }

    fn rebuild_shape(&mut self) {
        let alternatives = self
            .alternatives
            .iter()
            .map(|alt| {
                alt.iter()
                    .map(|s| {
                        let mut node = ShapeNode::leaf(s.name.clone(), s.kind);
                        node.max_extent = s.max_extent;
                        node
                    })
                    .collect()
            })
            .collect();
        self.shape = ProgramShape::new(vec![ShapeNode {
            name: self.name.clone(),
            kind: TaskKind::Par,
            max_extent: Some(1),
            alternatives,
        }]);
    }

    /// The application name.
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The shape mechanisms see: one nest node whose alternatives are the
    /// descriptor choices.
    #[must_use]
    pub fn shape(&self) -> &ProgramShape {
        &self.shape
    }

    /// The stage profiles of alternative `alt`.
    #[must_use]
    pub fn stages(&self, alt: usize) -> &[StageProfile] {
        &self.alternatives[alt]
    }

    /// Number of descriptor alternatives.
    #[must_use]
    pub fn alternative_count(&self) -> usize {
        self.alternatives.len()
    }

    /// Per-boundary forwarding overhead.
    #[must_use]
    pub fn forward_overhead_secs(&self) -> f64 {
        self.forward_overhead_secs
    }

    /// A configuration selecting alternative `alt` with the given stage
    /// extents.
    ///
    /// # Panics
    ///
    /// Panics if `extents` does not match the alternative's stage count.
    #[must_use]
    pub fn config_with_extents(&self, alt: usize, extents: &[u32]) -> Config {
        let stages = &self.alternatives[alt];
        assert_eq!(
            stages.len(),
            extents.len(),
            "extents must match stage count"
        );
        let children = stages
            .iter()
            .zip(extents)
            .map(|(s, &e)| TaskConfig::leaf(s.name.clone(), e))
            .collect();
        Config::new(vec![TaskConfig::nest(self.name.clone(), 1, alt, children)])
    }

    /// The paper's `Pthreads-Baseline`: even split over parallel stages.
    #[must_use]
    pub fn config_even(&self, threads: u32) -> Config {
        Config::even(&self.shape, threads)
    }

    /// The paper's `Pthreads-OS`: every stage sized to the whole machine,
    /// leaving load balancing to the OS scheduler.
    #[must_use]
    pub fn config_oversubscribed(&self, threads: u32) -> Config {
        let extents: Vec<u32> = self.alternatives[0]
            .iter()
            .map(|s| match s.kind {
                TaskKind::Seq => 1,
                TaskKind::Par => threads,
            })
            .collect();
        self.config_with_extents(0, &extents)
    }
}

/// How items enter the pipeline.
#[derive(Debug, Clone)]
pub enum Source {
    /// Batch mode: the first stage always has input available.
    Saturated,
    /// Online mode: items arrive per a schedule (Figure 12).
    Open(ArrivalSchedule),
}

/// Power simulation attachment.
#[derive(Debug, Clone, Copy)]
pub struct PowerSim {
    /// The platform power model.
    pub model: PowerModel,
    /// Meter sampling interval (the AP7892's 60/13 s by default).
    pub sample_interval_secs: f64,
    /// Meter noise seed.
    pub seed: u64,
}

impl Default for PowerSim {
    fn default() -> Self {
        PowerSim {
            model: PowerModel::default(),
            sample_interval_secs: 60.0 / 13.0,
            seed: 17,
        }
    }
}

/// Fixed parameters of a pipeline simulation.
#[derive(Debug, Clone)]
pub struct PipelineParams {
    /// Hardware contexts of the simulated machine.
    pub contexts: u32,
    /// Mechanism control period, in seconds.
    pub control_period_secs: f64,
    /// Simulation horizon, in seconds.
    pub horizon_secs: f64,
    /// Allow configurations that oversubscribe the contexts (needed for
    /// the `Pthreads-OS` baseline).
    pub allow_oversubscription: bool,
    /// Fractional service-time penalty (context switching, cache
    /// pollution) applied while the configuration has more workers than
    /// contexts. Application-dependent: small for compute-dense stages
    /// (ferret), large for cache-sensitive ones (dedup).
    pub oversub_penalty_frac: f64,
    /// Multiplicative service-time jitter amplitude in `[0, 1)`.
    pub service_jitter: f64,
    /// Jitter seed.
    pub seed: u64,
    /// Smoothing for per-stage execution-time averages.
    pub ewma_alpha: f64,
    /// Attach a power meter.
    pub power: Option<PowerSim>,
}

impl Default for PipelineParams {
    fn default() -> Self {
        PipelineParams {
            contexts: 24,
            control_period_secs: 1.0,
            horizon_secs: 120.0,
            allow_oversubscription: false,
            oversub_penalty_frac: 0.1,
            service_jitter: 0.0,
            seed: 1,
            ewma_alpha: 0.25,
            power: None,
        }
    }
}

/// Results of one pipeline simulation.
#[derive(Debug, Clone)]
pub struct PipelineOutcome {
    /// Items that left the final stage before the horizon.
    pub completed: u64,
    /// Simulated duration.
    pub horizon_secs: f64,
    /// Per-item response times (open source only).
    pub response: ResponseStats,
    /// Sink throughput at each control tick (Figure 13's y-axis).
    pub throughput_series: TimeSeries,
    /// Power-meter readings at each control tick (Figure 14).
    pub power_series: TimeSeries,
    /// `(time, config)` for every applied reconfiguration.
    pub config_history: Vec<(f64, Config)>,
    /// Configuration in force at the end.
    pub final_config: Config,
    /// Time-weighted expected power, if a meter was attached.
    pub mean_power_watts: Option<f64>,
    /// Mechanism proposals rejected by validation.
    pub rejected_configs: u64,
}

impl PipelineOutcome {
    /// Overall throughput: completions per simulated second.
    #[must_use]
    pub fn throughput(&self) -> f64 {
        if self.horizon_secs > 0.0 {
            self.completed as f64 / self.horizon_secs
        } else {
            0.0
        }
    }

    /// Mean of the throughput series from `from_secs` on (the stable
    /// region).
    #[must_use]
    pub fn stable_throughput(&self, from_secs: f64) -> f64 {
        self.throughput_series.mean_after(from_secs).unwrap_or(0.0)
    }
}

#[derive(Debug, Clone, Copy)]
struct Item {
    submit: f64,
}

#[derive(Debug)]
struct StageState {
    queue: VecDeque<Item>,
    busy: u32,
    extent: u32,
    mean_service: f64,
    completions: u64,
    completions_at_tick: u64,
    exec_ewma: Ewma,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum EvKind {
    Complete { generation: u32, stage: usize },
    Tick,
    Arrive,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Ev {
    time: OrdF64,
    seq: u64,
    kind: EvKind,
    item: Option<ItemSlot>,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct ItemSlot {
    submit_millis: u64,
}

impl PartialOrd for Ev {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Ev {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.time, self.seq).cmp(&(other.time, other.seq))
    }
}

struct Sim<'a> {
    model: &'a PipelineModel,
    params: &'a PipelineParams,
    budget: u32,
    now: f64,
    seq: u64,
    events: BinaryHeap<Reverse<Ev>>,
    stages: Vec<StageState>,
    generation: u32,
    alt: usize,
    global_busy: u32,
    configured_threads: u32,
    saturated: bool,
    arrivals_done: bool,
    completed: u64,
    dispatches_since_reconfig: u64,
    response: ResponseStats,
    throughput_series: TimeSeries,
    power_series: TimeSeries,
    config_history: Vec<(f64, Config)>,
    config: Config,
    rejected: u64,
    rng: SmallRng,
    sensor: Option<PowerSensor>,
    power_integral: f64,
    last_power_time: f64,
    sink_at_tick: u64,
}

impl<'a> Sim<'a> {
    fn push_event(&mut self, time: f64, kind: EvKind, item: Option<Item>) {
        self.seq += 1;
        self.events.push(Reverse(Ev {
            time: OrdF64::new(time),
            seq: self.seq,
            kind,
            item: item.map(|i| ItemSlot {
                submit_millis: (i.submit * 1e6) as u64,
            }),
        }));
    }

    fn service_time(&mut self, stage: usize) -> f64 {
        let base = self.stages[stage].mean_service
            + if stage > 0 {
                self.model.forward_overhead_secs
            } else {
                0.0
            };
        let jitter = if self.params.service_jitter > 0.0 {
            let j = self.params.service_jitter;
            1.0 + self.rng.gen_range(-j..j)
        } else {
            1.0
        };
        // Work-conserving processor sharing: with more busy workers than
        // contexts, every service dilates proportionally.
        let dilation = f64::from(self.global_busy.max(1)).max(f64::from(self.params.contexts))
            / f64::from(self.params.contexts);
        // Oversubscribed *configurations* additionally pay a scheduling and
        // cache-pollution tax on every item.
        let penalty = if self.configured_threads > self.params.contexts {
            1.0 + self.params.oversub_penalty_frac
        } else {
            1.0
        };
        base * jitter * dilation * penalty
    }

    fn try_start(&mut self, stage: usize) {
        loop {
            let st = &self.stages[stage];
            if st.busy >= st.extent {
                return;
            }
            let item = if stage == 0 && self.saturated {
                if self.now >= self.params.horizon_secs {
                    return;
                }
                Some(Item { submit: self.now })
            } else {
                self.stages[stage].queue.pop_front()
            };
            let Some(item) = item else { return };
            self.stages[stage].busy += 1;
            self.global_busy += 1;
            self.accumulate_power();
            if stage == 0 {
                self.dispatches_since_reconfig += 1;
            }
            let service = self.service_time(stage);
            self.stages[stage].exec_ewma.update(service);
            let generation = self.generation;
            self.push_event(
                self.now + service,
                EvKind::Complete { generation, stage },
                Some(item),
            );
        }
    }

    fn accumulate_power(&mut self) {
        if let Some(power) = &self.params.power {
            let busy = self.global_busy.min(self.params.contexts);
            // The integral uses the *previous* busy level up to now; the
            // caller mutates busy right before/after calling this, so we
            // approximate with the current level — adequate at the event
            // densities simulated here.
            self.power_integral +=
                power.model.expected_power(busy) * (self.now - self.last_power_time);
            self.last_power_time = self.now;
        }
    }

    fn map_stage(&self, old_stage: usize, old_len: usize) -> usize {
        let new_len = self.stages.len();
        if old_len == 0 || new_len == 0 {
            return 0;
        }
        (old_stage * new_len / old_len).min(new_len - 1)
    }

    fn deliver(&mut self, from_stage: usize, structure_len: usize, item: Item) {
        // Item finished `from_stage` of a structure with `structure_len`
        // stages; route it onward in the *current* structure.
        let next_old = from_stage + 1;
        if next_old >= structure_len {
            self.sink(item);
            return;
        }
        let target = if structure_len == self.stages.len() {
            next_old
        } else {
            self.map_stage(next_old, structure_len)
        };
        self.stages[target].queue.push_back(item);
        self.try_start(target);
    }

    fn sink(&mut self, item: Item) {
        self.completed += 1;
        self.response.record((self.now - item.submit).max(0.0));
    }

    fn snapshot(&mut self) -> MonitorSnapshot {
        let mut snap = MonitorSnapshot::at(self.now);
        snap.dispatches_since_reconfig = self.dispatches_since_reconfig;
        snap.queue.occupancy = self.stages[0].queue.len() as f64;
        snap.queue.completed = self.completed;
        for (s, st) in self.stages.iter().enumerate() {
            let path = TaskPath::root_child(0).child(s as u16);
            let window = self.params.control_period_secs;
            let rate = (st.completions - st.completions_at_tick) as f64 / window;
            snap.tasks.insert(
                path,
                TaskStats {
                    invocations: st.completions,
                    mean_exec_secs: st.exec_ewma.value_or(st.mean_service),
                    throughput: rate,
                    load: st.queue.len() as f64,
                    utilization: f64::from(st.busy) / f64::from(st.extent.max(1)),
                    // The analytic simulator does not model latency
                    // distributions; percentile fields stay at their
                    // "not measured" default of 0.0.
                    ..TaskStats::default()
                },
            );
        }
        if let Some(sensor) = &mut self.sensor {
            let busy = self.global_busy.min(self.params.contexts);
            snap.power_watts = Some(sensor.read(self.now, busy));
        }
        snap
    }

    fn build_structure(&mut self, config: &Config) {
        let nest = config.tasks[0]
            .nested
            .as_ref()
            .expect("pipeline config is a nest");
        let alt = nest.alternative;
        let profiles = self.model.stages(alt);
        let old_queues: Vec<VecDeque<Item>> = self
            .stages
            .iter_mut()
            .map(|s| std::mem::take(&mut s.queue))
            .collect();
        let old_len = self.stages.len();
        let mut new_stages: Vec<StageState> = profiles
            .iter()
            .zip(&nest.tasks)
            .map(|(p, t)| StageState {
                queue: VecDeque::new(),
                busy: 0,
                extent: t.extent,
                mean_service: p.mean_service_secs,
                completions: 0,
                completions_at_tick: 0,
                exec_ewma: Ewma::new(self.params.ewma_alpha),
            })
            .collect();
        // Remap queued items proportionally into the new structure.
        for (s, queue) in old_queues.into_iter().enumerate() {
            let target = (s * new_stages.len())
                .checked_div(old_len)
                .map_or(0, |t| t.min(new_stages.len() - 1));
            for item in queue {
                new_stages[target].queue.push_back(item);
            }
        }
        self.stages = new_stages;
        self.alt = alt;
        self.generation += 1;
        // In-flight work of the old structure still holds contexts;
        // global_busy keeps counting it until its Complete events fire.
    }

    fn apply_config(&mut self, config: Config) {
        let nest = config.tasks[0]
            .nested
            .as_ref()
            .expect("pipeline config is a nest");
        if nest.alternative != self.alt || nest.tasks.len() != self.stages.len() {
            self.build_structure(&config);
        } else {
            for (st, t) in self.stages.iter_mut().zip(&nest.tasks) {
                st.extent = t.extent;
            }
        }
        self.configured_threads = config.total_threads();
        self.config_history.push((self.now, config.clone()));
        self.config = config;
        self.dispatches_since_reconfig = 0;
        for s in 0..self.stages.len() {
            self.try_start(s);
        }
    }
}

/// Simulates a pipeline under a mechanism.
///
/// With a [`Source::Saturated`] source the run lasts `horizon_secs`; with
/// an open source it ends when every item has drained (or at the horizon,
/// whichever is first).
pub fn run_pipeline(
    model: &PipelineModel,
    source: &Source,
    mechanism: &mut dyn Mechanism,
    res: Resources,
    params: &PipelineParams,
) -> PipelineOutcome {
    run_pipeline_observed(
        model,
        source,
        mechanism,
        res,
        params,
        &mut crate::observer::NullObserver,
    )
}

/// [`run_pipeline`] with a [`SimObserver`](crate::observer::SimObserver)
/// watching every decision point.
///
/// The observer sees the launch configuration, each control-tick
/// snapshot, each proposal verdict, and each applied configuration —
/// enough to build a replayable flight-recorder trace of the run.
pub fn run_pipeline_observed(
    model: &PipelineModel,
    source: &Source,
    mechanism: &mut dyn Mechanism,
    res: Resources,
    params: &PipelineParams,
    observer: &mut dyn crate::observer::SimObserver,
) -> PipelineOutcome {
    use crate::observer::ProposalOutcome;
    let budget = if params.allow_oversubscription {
        u32::MAX
    } else {
        res.threads.min(params.contexts).max(1)
    };
    let shape = model.shape();
    let initial = mechanism
        .initial(shape, &res)
        .filter(|c| c.validate(shape, budget).is_ok())
        .unwrap_or_else(|| model.config_even(res.threads.min(params.contexts)));

    let mut sim = Sim {
        model,
        params,
        budget,
        now: 0.0,
        seq: 0,
        events: BinaryHeap::new(),
        stages: Vec::new(),
        generation: 0,
        alt: 0,
        global_busy: 0,
        configured_threads: 0,
        saturated: matches!(source, Source::Saturated),
        arrivals_done: false,
        completed: 0,
        dispatches_since_reconfig: 0,
        response: ResponseStats::new(),
        throughput_series: TimeSeries::new("throughput"),
        power_series: TimeSeries::new("power"),
        config_history: Vec::new(),
        config: initial.clone(),
        rejected: 0,
        rng: SmallRng::seed_from_u64(params.seed),
        sensor: params
            .power
            .map(|p| PowerSensor::new(p.model, p.sample_interval_secs, p.seed)),
        power_integral: 0.0,
        last_power_time: 0.0,
        sink_at_tick: 0,
    };
    observer.launched(mechanism.name(), res.threads, shape, &initial);
    sim.apply_config(initial);
    sim.config_history.clear(); // the initial config is not a "change"

    // Seed arrivals.
    let mut arrival_times: Vec<f64> = Vec::new();
    if let Source::Open(schedule) = source {
        arrival_times = schedule.times().to_vec();
    }
    let mut next_arrival = 0usize;
    if let Some(&t) = arrival_times.first() {
        sim.push_event(t, EvKind::Arrive, None);
        next_arrival = 1;
    } else {
        sim.arrivals_done = true;
    }
    sim.push_event(params.control_period_secs, EvKind::Tick, None);
    for s in 0..sim.stages.len() {
        sim.try_start(s);
    }

    while let Some(Reverse(ev)) = sim.events.pop() {
        let t = ev.time.get();
        if t > params.horizon_secs {
            sim.now = params.horizon_secs;
            break;
        }
        sim.now = t;
        match ev.kind {
            EvKind::Arrive => {
                let item = Item { submit: sim.now };
                sim.stages[0].queue.push_back(item);
                sim.try_start(0);
                if next_arrival < arrival_times.len() {
                    let t = arrival_times[next_arrival];
                    next_arrival += 1;
                    sim.push_event(t, EvKind::Arrive, None);
                } else {
                    sim.arrivals_done = true;
                }
            }
            EvKind::Complete { generation, stage } => {
                let submit = ev
                    .item
                    .map(|s| s.submit_millis as f64 / 1e6)
                    .unwrap_or(sim.now);
                let item = Item { submit };
                sim.accumulate_power();
                sim.global_busy = sim.global_busy.saturating_sub(1);
                if generation == sim.generation {
                    let st = &mut sim.stages[stage];
                    st.busy = st.busy.saturating_sub(1);
                    st.completions += 1;
                    let len = sim.stages.len();
                    sim.deliver(stage, len, item);
                    sim.try_start(stage);
                } else {
                    // Stale completion from a replaced structure: route the
                    // item into the current structure.
                    let old_len = sim.model.stages(sim.alt).len().max(stage + 1);
                    sim.deliver(stage, old_len, item);
                }
            }
            EvKind::Tick => {
                let snap = sim.snapshot();
                if let Some(power) = snap.power_watts {
                    sim.power_series.push(sim.now, power);
                }
                let window_rate =
                    (sim.completed - sim.sink_at_tick) as f64 / params.control_period_secs;
                sim.throughput_series.push(sim.now, window_rate);
                sim.sink_at_tick = sim.completed;

                observer.snapshot_taken(&snap);
                let mut proposal = mechanism.reconfigure(&snap, &sim.config, shape, &res);
                if let Some(config) = proposal.take() {
                    match config.validate(shape, budget) {
                        Ok(()) if config != sim.config => {
                            observer.proposal_evaluated(
                                sim.now,
                                mechanism.name(),
                                &config,
                                ProposalOutcome::Accepted,
                            );
                            sim.apply_config(config);
                            mechanism.applied(&sim.config);
                            let now = sim.now;
                            observer.config_applied(now, &sim.config);
                        }
                        Ok(()) => observer.proposal_evaluated(
                            sim.now,
                            mechanism.name(),
                            &config,
                            ProposalOutcome::Unchanged,
                        ),
                        Err(err) => {
                            sim.rejected += 1;
                            observer.proposal_evaluated(
                                sim.now,
                                mechanism.name(),
                                &config,
                                ProposalOutcome::Rejected(err.code()),
                            );
                        }
                    }
                }
                if let Some(trace) = mechanism.explain() {
                    observer.decision_explained(sim.now, mechanism.name(), &trace);
                }
                for st in &mut sim.stages {
                    st.completions_at_tick = st.completions;
                }
                if sim.now + params.control_period_secs <= params.horizon_secs {
                    sim.push_event(sim.now + params.control_period_secs, EvKind::Tick, None);
                }
            }
        }
        // Open-source termination: everything drained.
        if !sim.saturated
            && sim.arrivals_done
            && sim.global_busy == 0
            && sim.stages.iter().all(|s| s.queue.is_empty())
        {
            break;
        }
    }

    let _ = sim.budget;
    let horizon = sim.now.min(params.horizon_secs).max(f64::MIN_POSITIVE);
    let mean_power = params.power.map(|p| {
        if sim.now > 0.0 {
            sim.accumulate_power();
            sim.power_integral / sim.now
        } else {
            p.model.idle_watts()
        }
    });
    PipelineOutcome {
        completed: sim.completed,
        horizon_secs: horizon,
        response: sim.response,
        throughput_series: sim.throughput_series,
        power_series: sim.power_series,
        config_history: sim.config_history,
        final_config: sim.config,
        mean_power_watts: mean_power,
        rejected_configs: sim.rejected,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dope_core::StaticMechanism;

    fn three_stage() -> PipelineModel {
        PipelineModel::new(
            "pipe",
            vec![
                StageProfile::seq("in", 0.001),
                StageProfile::par("work", 0.010),
                StageProfile::seq("out", 0.001),
            ],
        )
    }

    fn run_static(model: &PipelineModel, extents: &[u32], horizon: f64) -> PipelineOutcome {
        let config = model.config_with_extents(0, extents);
        let mut mech = StaticMechanism::new(config);
        run_pipeline(
            model,
            &Source::Saturated,
            &mut mech,
            Resources::threads(24),
            &PipelineParams {
                horizon_secs: horizon,
                ..PipelineParams::default()
            },
        )
    }

    #[test]
    fn saturated_throughput_matches_bottleneck() {
        let model = three_stage();
        let out = run_static(&model, &[1, 10, 1], 50.0);
        // Bottleneck: work stage, 10 workers at 10 ms (+ forwarding 0) =>
        // 1000 items/s; in stage at 1 ms => 1000 items/s. Either bounds at
        // ~1000/s.
        let thr = out.throughput();
        assert!((900.0..=1050.0).contains(&thr), "throughput {thr}");
    }

    #[test]
    fn more_workers_on_bottleneck_increases_throughput() {
        let model = three_stage();
        let narrow = run_static(&model, &[1, 2, 1], 30.0);
        let wide = run_static(&model, &[1, 8, 1], 30.0);
        assert!(
            wide.throughput() > 1.5 * narrow.throughput(),
            "wide {} narrow {}",
            wide.throughput(),
            narrow.throughput()
        );
    }

    #[test]
    fn oversubscription_dilates_service() {
        // Two balanced parallel stages: a fair split saturates the machine
        // exactly; the oversubscribed configuration runs 50 workers on 24
        // contexts and pays the scheduling tax on every item.
        let model = PipelineModel::new(
            "pipe",
            vec![
                StageProfile::seq("in", 0.0001),
                StageProfile::par("a", 0.010),
                StageProfile::par("b", 0.010),
                StageProfile::seq("out", 0.0001),
            ],
        );
        let fair = run_static(&model, &[1, 11, 11, 1], 30.0);
        let config = model.config_oversubscribed(24);
        let mut mech = StaticMechanism::new(config);
        let os = run_pipeline(
            &model,
            &Source::Saturated,
            &mut mech,
            Resources::threads(24),
            &PipelineParams {
                horizon_secs: 30.0,
                allow_oversubscription: true,
                oversub_penalty_frac: 0.15,
                ..PipelineParams::default()
            },
        );
        assert!(
            os.throughput() < fair.throughput(),
            "oversubscribed {} vs fair {}",
            os.throughput(),
            fair.throughput()
        );
    }

    #[test]
    fn open_source_drains_and_reports_response() {
        let model = three_stage();
        let schedule = ArrivalSchedule::uniform(0.02, 100);
        let mut mech = StaticMechanism::new(model.config_with_extents(0, &[1, 4, 1]));
        let out = run_pipeline(
            &model,
            &Source::Open(schedule),
            &mut mech,
            Resources::threads(24),
            &PipelineParams {
                horizon_secs: 100.0,
                ..PipelineParams::default()
            },
        );
        assert_eq!(out.completed, 100);
        assert_eq!(out.response.count(), 100);
        assert!(out.response.mean().unwrap() > 0.0);
    }

    #[test]
    fn power_meter_reports_series_and_mean() {
        let model = three_stage();
        let mut mech = StaticMechanism::new(model.config_with_extents(0, &[1, 10, 1]));
        let out = run_pipeline(
            &model,
            &Source::Saturated,
            &mut mech,
            Resources::threads(24),
            &PipelineParams {
                horizon_secs: 30.0,
                power: Some(PowerSim::default()),
                ..PipelineParams::default()
            },
        );
        assert!(!out.power_series.is_empty());
        let mean = out.mean_power_watts.unwrap();
        let model_power = PowerModel::default();
        assert!(mean >= model_power.idle_watts() * 0.99, "mean {mean}");
        assert!(mean <= model_power.peak_power() * 1.01, "mean {mean}");
    }

    #[test]
    fn fused_alternative_switch_is_work_conserving() {
        let model = PipelineModel::new(
            "p",
            vec![
                StageProfile::seq("in", 0.001),
                StageProfile::par("a", 0.004),
                StageProfile::par("b", 0.004),
                StageProfile::seq("out", 0.001),
            ],
        )
        .with_fused(vec![
            StageProfile::seq("in", 0.001),
            StageProfile::par("ab", 0.008),
            StageProfile::seq("out", 0.001),
        ]);
        // Static mechanism that switches to the fused alternative.
        let fused = model.config_with_extents(1, &[1, 8, 1]);
        let mut mech = StaticMechanism::new(fused);
        let out = run_pipeline(
            &model,
            &Source::Open(ArrivalSchedule::uniform(0.005, 200)),
            &mut mech,
            Resources::threads(24),
            &PipelineParams {
                horizon_secs: 100.0,
                ..PipelineParams::default()
            },
        );
        assert_eq!(out.completed, 200, "no items lost across the switch");
    }

    #[test]
    fn deterministic_given_seed() {
        let model = three_stage();
        let a = run_static(&model, &[1, 4, 1], 20.0);
        let b = run_static(&model, &[1, 4, 1], 20.0);
        assert_eq!(a.completed, b.completed);
    }
}
