//! Hooks for observing the simulator's decision loop.
//!
//! Both [`run_system`](crate::system::run_system) and
//! [`run_pipeline`](crate::pipeline::run_pipeline) drive the same loop the
//! live executive runs: freeze a [`MonitorSnapshot`], consult the
//! mechanism, validate the proposal, apply it. A [`SimObserver`] sees each
//! of those decision points as it happens, without the simulator
//! depending on any particular trace format — the `dope-trace` crate
//! implements this trait to build replayable flight-recorder traces.
//!
//! # Example
//!
//! Counting applied reconfigurations:
//!
//! ```
//! use dope_core::Config;
//! use dope_sim::observer::SimObserver;
//!
//! #[derive(Default)]
//! struct Counter(u64);
//!
//! impl SimObserver for Counter {
//!     fn config_applied(&mut self, _time_secs: f64, _config: &Config) {
//!         self.0 += 1;
//!     }
//! }
//!
//! let mut counter = Counter::default();
//! // pass `&mut counter` to `run_system_observed` / `run_pipeline_observed`
//! # let _ = &mut counter;
//! ```

use dope_core::{Config, DecisionTrace, DiagCode, MonitorSnapshot, ProgramShape};

/// What happened to one mechanism proposal.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ProposalOutcome {
    /// The proposal validated and differs from the current configuration;
    /// it will be applied.
    Accepted,
    /// The proposal validated but equals the current configuration; the
    /// simulator leaves the structure untouched.
    Unchanged,
    /// The proposal failed [`Config::validate`]; the diagnostic code of
    /// the first error explains why.
    Rejected(DiagCode),
}

/// Observes the decision loop of a simulation run.
///
/// Every method has a no-op default, so observers implement only what
/// they care about. The simulator calls the methods in causal order:
/// [`launched`](SimObserver::launched) once, then per decision point
/// [`snapshot_taken`](SimObserver::snapshot_taken), possibly
/// [`proposal_evaluated`](SimObserver::proposal_evaluated), and — when a
/// proposal is accepted — [`config_applied`](SimObserver::config_applied).
pub trait SimObserver {
    /// The run started under `config` (after initial-config validation).
    fn launched(&mut self, mechanism: &str, threads: u32, shape: &ProgramShape, config: &Config) {
        let _ = (mechanism, threads, shape, config);
    }

    /// A monitor snapshot was frozen for the mechanism.
    fn snapshot_taken(&mut self, snapshot: &MonitorSnapshot) {
        let _ = snapshot;
    }

    /// The mechanism proposed `proposal` and the simulator judged it.
    fn proposal_evaluated(
        &mut self,
        time_secs: f64,
        mechanism: &str,
        proposal: &Config,
        outcome: ProposalOutcome,
    ) {
        let _ = (time_secs, mechanism, proposal, outcome);
    }

    /// An accepted configuration took effect at `time_secs`.
    fn config_applied(&mut self, time_secs: f64, config: &Config) {
        let _ = (time_secs, config);
    }

    /// The mechanism explained the decision it just took (its
    /// [`Mechanism::explain()`](dope_core::Mechanism::explain) trace).
    /// Called after every consult that produced an explanation — holds
    /// included, so observers see *why* nothing changed. Additive with a
    /// no-op default.
    fn decision_explained(&mut self, time_secs: f64, mechanism: &str, trace: &DecisionTrace) {
        let _ = (time_secs, mechanism, trace);
    }
}

/// The do-nothing observer behind the plain `run_*` entry points.
#[derive(Debug, Default, Clone, Copy)]
pub struct NullObserver;

impl SimObserver for NullObserver {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn null_observer_accepts_all_calls() {
        let mut obs = NullObserver;
        let config = Config::default();
        let shape = ProgramShape::new(vec![]);
        obs.launched("m", 4, &shape, &config);
        obs.snapshot_taken(&MonitorSnapshot::at(0.0));
        obs.proposal_evaluated(1.0, "m", &config, ProposalOutcome::Unchanged);
        obs.proposal_evaluated(
            1.0,
            "m",
            &config,
            ProposalOutcome::Rejected(DiagCode::BudgetExceeded),
        );
        obs.config_applied(2.0, &config);
    }
}
