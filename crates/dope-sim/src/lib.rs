//! Discrete-event simulator of the paper's evaluation testbed.
//!
//! The paper evaluates DoPE natively on a 24-core Xeon. This crate
//! provides a faithful *model* of that testbed so the evaluation can be
//! regenerated deterministically on any machine:
//!
//! * [`system`] — the open transaction-serving system behind Figures 2 and
//!   11: Poisson arrivals into a work queue, a pool of hardware contexts,
//!   and two-level `<DoP_outer, DoP_inner>` parallel transactions whose
//!   service times come from calibrated [`profile`]s;
//! * [`pipeline`] — the stage-network model behind Figures 12–15: ferret-
//!   and dedup-style pipelines with per-stage extents, queue occupancies,
//!   task fusion, oversubscription effects, and a rate-limited power
//!   meter.
//!
//! Both models drive the *same* [`Mechanism`](dope_core::Mechanism) trait
//! as the live `dope-runtime` executive: a mechanism cannot tell whether
//! its snapshots come from the simulator or from real threads.
//!
//! # Example
//!
//! ```
//! use dope_core::{Mechanism, Resources, StaticMechanism};
//! use dope_sim::profile::AmdahlProfile;
//! use dope_sim::system::{SystemParams, TwoLevelModel};
//! use dope_workload::ArrivalSchedule;
//!
//! // A transaction that takes 10 s sequentially and parallelizes well.
//! let model = TwoLevelModel::doall("price", AmdahlProfile::new(10.0, 0.95, 0.0, 0.05));
//! let mut mech = StaticMechanism::new(model.config_for_width(24, 8));
//! let schedule = ArrivalSchedule::poisson(0.5, 50, 1);
//! let outcome = dope_sim::system::run_system(
//!     &model,
//!     &schedule,
//!     &mut mech,
//!     Resources::threads(24),
//!     &SystemParams::default(),
//! );
//! assert_eq!(outcome.completed, 50);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod event;
pub mod observer;
pub mod pipeline;
pub mod profile;
pub mod system;

pub use event::OrdF64;
pub use observer::{NullObserver, ProposalOutcome, SimObserver};
pub use profile::AmdahlProfile;
