//! Ordered time values for event heaps.

/// A finite `f64` with a total order, usable as a heap key.
///
/// # Example
///
/// ```
/// use dope_sim::OrdF64;
///
/// let mut times = vec![OrdF64::new(2.0), OrdF64::new(0.5)];
/// times.sort();
/// assert_eq!(times[0].get(), 0.5);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OrdF64(f64);

impl OrdF64 {
    /// Wraps a finite value.
    ///
    /// # Panics
    ///
    /// Panics if `value` is NaN or infinite.
    #[must_use]
    pub fn new(value: f64) -> Self {
        assert!(value.is_finite(), "event time must be finite, got {value}");
        OrdF64(value)
    }

    /// The wrapped value.
    #[must_use]
    pub fn get(self) -> f64 {
        self.0
    }
}

impl Eq for OrdF64 {}

impl PartialOrd for OrdF64 {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for OrdF64 {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.0
            .partial_cmp(&other.0)
            .expect("OrdF64 values are finite")
    }
}

impl From<OrdF64> for f64 {
    fn from(v: OrdF64) -> f64 {
        v.get()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::cmp::Reverse;
    use std::collections::BinaryHeap;

    #[test]
    fn orders_like_f64() {
        assert!(OrdF64::new(1.0) < OrdF64::new(2.0));
        assert_eq!(OrdF64::new(3.0), OrdF64::new(3.0));
    }

    #[test]
    fn min_heap_pops_earliest() {
        let mut heap = BinaryHeap::new();
        for t in [3.0, 1.0, 2.0] {
            heap.push(Reverse(OrdF64::new(t)));
        }
        assert_eq!(heap.pop().unwrap().0.get(), 1.0);
        assert_eq!(heap.pop().unwrap().0.get(), 2.0);
    }

    #[test]
    #[should_panic(expected = "event time must be finite")]
    fn nan_panics() {
        let _ = OrdF64::new(f64::NAN);
    }
}
