//! Calibrated service-time profiles for parallel transactions.
//!
//! The simulator needs the execution time of one transaction (one video,
//! one pricing request, one file) as a function of the threads devoted to
//! it. [`AmdahlProfile`] models that curve with four parameters: a
//! sequential time, a parallelizable fraction, a fixed cost of going
//! parallel at all (thread creation, block-granularity losses — what makes
//! bzip unprofitable below width 4), and a per-thread coordination cost
//! (communication/synchronization — what caps x264's speedup at 6.3x on 8
//! threads and makes wide configurations waste contexts at heavy load).

use serde::{Deserialize, Serialize};

/// Transaction execution time versus thread width.
///
/// `exec_time(1) = t1`; for `w > 1`,
///
/// ```text
/// exec_time(w) = t1 * ((1 - f) + f / w) + fixed + per_thread * (w - 1)
/// ```
///
/// # Example
///
/// ```
/// use dope_sim::AmdahlProfile;
///
/// let p = AmdahlProfile::new(50.0, 0.97, 0.5, 0.35);
/// assert_eq!(p.exec_time(1), 50.0);
/// assert!(p.exec_time(8) < p.exec_time(1));
/// assert!(p.speedup(8) > 4.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AmdahlProfile {
    t1: f64,
    parallel_frac: f64,
    fixed_overhead: f64,
    per_thread_overhead: f64,
    seq_stages: u32,
}

impl AmdahlProfile {
    /// A profile with sequential time `t1`, parallel fraction
    /// `parallel_frac`, fixed parallelization overhead `fixed_overhead`,
    /// and per-extra-thread overhead `per_thread_overhead` (all seconds
    /// except the fraction).
    ///
    /// # Panics
    ///
    /// Panics if `t1` is not positive, `parallel_frac` is outside
    /// `[0, 1]`, or an overhead is negative.
    #[must_use]
    pub fn new(t1: f64, parallel_frac: f64, fixed_overhead: f64, per_thread_overhead: f64) -> Self {
        assert!(t1 > 0.0, "sequential time must be positive");
        assert!(
            (0.0..=1.0).contains(&parallel_frac),
            "parallel fraction must be in [0, 1]"
        );
        assert!(fixed_overhead >= 0.0, "fixed overhead must be non-negative");
        assert!(
            per_thread_overhead >= 0.0,
            "per-thread overhead must be non-negative"
        );
        AmdahlProfile {
            t1,
            parallel_frac,
            fixed_overhead,
            per_thread_overhead,
            seq_stages: 0,
        }
    }

    /// Declares that `seq_stages` of the transaction's width are occupied
    /// by sequential pipeline endpoints (a reader and a writer, say) that
    /// contribute no speedup: effective parallel workers are
    /// `width - seq_stages`.
    ///
    /// This models applications like bzip whose Table 4 `DoP_min = 4`:
    /// widths 2 and 3 pay the pipeline's overheads without gaining any
    /// parallel workers beyond one.
    #[must_use]
    pub fn with_seq_stages(mut self, seq_stages: u32) -> Self {
        self.seq_stages = seq_stages;
        self
    }

    /// Sequential execution time `t1`.
    #[must_use]
    pub fn t1(&self) -> f64 {
        self.t1
    }

    /// Execution time with `width` threads.
    #[must_use]
    pub fn exec_time(&self, width: u32) -> f64 {
        if width <= 1 {
            return self.t1;
        }
        let w = f64::from(width);
        let effective = f64::from(width.saturating_sub(self.seq_stages).max(1));
        self.t1 * ((1.0 - self.parallel_frac) + self.parallel_frac / effective)
            + self.fixed_overhead
            + self.per_thread_overhead * (w - 1.0)
    }

    /// Speedup over sequential with `width` threads.
    #[must_use]
    pub fn speedup(&self, width: u32) -> f64 {
        self.t1 / self.exec_time(width)
    }

    /// Parallel efficiency `speedup(w) / w`.
    #[must_use]
    pub fn efficiency(&self, width: u32) -> f64 {
        self.speedup(width) / f64::from(width.max(1))
    }

    /// The paper's `Mmax`: the largest width up to `limit` whose
    /// efficiency is at least 0.5 (at least 1).
    #[must_use]
    pub fn m_max(&self, limit: u32) -> u32 {
        (1..=limit.max(1))
            .filter(|&w| self.efficiency(w) >= 0.5)
            .max()
            .unwrap_or(1)
    }

    /// The smallest width that beats sequential execution, or `None` if no
    /// width up to `limit` does (Table 4's "Inner DoP_min extent for
    /// speedup").
    #[must_use]
    pub fn m_min(&self, limit: u32) -> Option<u32> {
        (2..=limit.max(1)).find(|&w| self.exec_time(w) < self.t1)
    }

    /// The width up to `limit` with the lowest execution time.
    #[must_use]
    pub fn best_width(&self, limit: u32) -> u32 {
        (1..=limit.max(1))
            .min_by(|&a, &b| {
                self.exec_time(a)
                    .partial_cmp(&self.exec_time(b))
                    .expect("execution times are finite")
            })
            .unwrap_or(1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// x264-like calibration: ~6.3x speedup at width 8.
    fn x264_like() -> AmdahlProfile {
        AmdahlProfile::new(50.4, 0.985, 0.2, 0.12)
    }

    #[test]
    fn sequential_width_is_t1() {
        let p = x264_like();
        assert_eq!(p.exec_time(1), p.t1());
        assert_eq!(p.speedup(1), 1.0);
        assert_eq!(p.efficiency(1), 1.0);
    }

    #[test]
    fn exec_time_decreases_then_flattens() {
        let p = x264_like();
        assert!(p.exec_time(2) < p.exec_time(1));
        assert!(p.exec_time(8) < p.exec_time(4));
        // Very wide configurations pay coordination overheads.
        assert!(p.exec_time(64) > p.exec_time(16));
    }

    #[test]
    fn x264_calibration_hits_paper_speedup() {
        let p = x264_like();
        let s8 = p.speedup(8);
        assert!((5.8..=6.8).contains(&s8), "speedup at 8 = {s8}");
        // The efficiency-0.5 boundary sits at or beyond the paper's
        // declared Mmax = 8 (applications pin Mmax explicitly via
        // `max_extent`; the profile only has to keep width 8 efficient).
        assert!(p.m_max(24) >= 8);
        assert!(p.efficiency(8) >= 0.5);
    }

    #[test]
    fn m_min_detects_startup_cost() {
        // bzip-like: fixed overhead makes widths 2-3 slower than serial.
        let p = AmdahlProfile::new(10.0, 0.9, 6.3, 0.02);
        assert!(p.exec_time(2) > p.t1());
        assert!(p.exec_time(3) > p.t1());
        assert!(p.exec_time(4) < p.t1());
        assert_eq!(p.m_min(24), Some(4));
    }

    #[test]
    fn m_min_none_when_never_profitable() {
        let p = AmdahlProfile::new(1.0, 0.1, 5.0, 1.0);
        assert_eq!(p.m_min(16), None);
    }

    #[test]
    fn best_width_is_interior_minimum() {
        let p = x264_like();
        let best = p.best_width(24);
        assert!(best > 1 && best <= 24);
        assert!(p.exec_time(best) <= p.exec_time(best + 1));
        assert!(p.exec_time(best) <= p.exec_time(best - 1));
    }

    #[test]
    #[should_panic(expected = "parallel fraction must be in [0, 1]")]
    fn bad_fraction_panics() {
        let _ = AmdahlProfile::new(1.0, 1.5, 0.0, 0.0);
    }

    #[test]
    fn seq_stages_push_m_min_up() {
        // bzip-like: a reader and a writer occupy two of the width's
        // threads, so widths 2-3 have one effective worker and only pay
        // overheads; width 4 is the first profitable one (Table 4).
        let p = AmdahlProfile::new(20.0, 0.93, 0.4, 0.05).with_seq_stages(2);
        assert!(p.exec_time(2) > p.t1());
        assert!(p.exec_time(3) > p.t1());
        assert!(p.exec_time(4) < p.t1());
        assert_eq!(p.m_min(24), Some(4));
        // And wider configurations still provide a healthy speedup.
        assert!(p.speedup(10) > 3.0);
    }
}
