//! The open transaction-serving system model (Figures 2 and 11).
//!
//! User requests arrive according to a Poisson process and wait in a work
//! queue. The machine has a fixed number of hardware contexts. Each
//! transaction executes under the current parallelism configuration: it
//! occupies `width` contexts for `exec_time(width)` seconds, and at most
//! `DoP_outer` transactions run concurrently. A [`Mechanism`] is consulted
//! on every arrival — the paper's per-task adaptation granularity — and
//! may change the configuration for subsequent dispatches.

use crate::event::OrdF64;
use crate::observer::{ProposalOutcome, SimObserver};
use crate::profile::AmdahlProfile;
use dope_core::nest::{self, TwoLevelNest};
use dope_core::{
    AdmissionPolicy, AdmissionStats, Config, Mechanism, MonitorSnapshot, ProgramShape, Resources,
    ShapeNode, TaskKind, TaskStats,
};
use dope_workload::{ArrivalSchedule, ResponseStats, ThroughputMeter, TimeSeries};
use std::cmp::Reverse;
use std::collections::{BinaryHeap, VecDeque};

/// A two-level application model: an outer transaction loop whose body
/// parallelizes per a calibrated [`AmdahlProfile`].
///
/// # Example
///
/// ```
/// use dope_sim::profile::AmdahlProfile;
/// use dope_sim::system::TwoLevelModel;
///
/// let x264 = TwoLevelModel::pipeline("transcode", AmdahlProfile::new(50.4, 0.985, 0.2, 0.12));
/// let config = x264.config_for_width(24, 8);
/// assert_eq!(x264.width_of(&config), 8);
/// ```
#[derive(Debug, Clone)]
pub struct TwoLevelModel {
    name: String,
    shape: ProgramShape,
    nest: TwoLevelNest,
    profile: AmdahlProfile,
}

impl TwoLevelModel {
    /// A transaction whose body is a read/transform/write pipeline plus a
    /// sequential-transaction alternative (x264, bzip).
    #[must_use]
    pub fn pipeline(name: &str, profile: AmdahlProfile) -> Self {
        let shape = ProgramShape::new(vec![ShapeNode {
            name: name.to_string(),
            kind: TaskKind::Par,
            max_extent: None,
            alternatives: vec![
                vec![
                    ShapeNode::leaf("read", TaskKind::Seq),
                    ShapeNode::leaf("transform", TaskKind::Par),
                    ShapeNode::leaf("write", TaskKind::Seq),
                ],
                vec![ShapeNode::leaf("whole", TaskKind::Seq)],
            ],
        }]);
        Self::custom(name, shape, profile)
    }

    /// A transaction whose body is a DOALL loop (swaptions, gimp).
    #[must_use]
    pub fn doall(name: &str, profile: AmdahlProfile) -> Self {
        let shape = ProgramShape::new(vec![ShapeNode {
            name: name.to_string(),
            kind: TaskKind::Par,
            max_extent: None,
            alternatives: vec![vec![ShapeNode::leaf("chunk", TaskKind::Par)]],
        }]);
        Self::custom(name, shape, profile)
    }

    /// A transaction with a caller-provided shape.
    ///
    /// # Panics
    ///
    /// Panics if the shape contains no nested task.
    #[must_use]
    pub fn custom(name: &str, shape: ProgramShape, profile: AmdahlProfile) -> Self {
        let nest = nest::find_two_level(&shape).expect("shape must contain a two-level nest");
        TwoLevelModel {
            name: name.to_string(),
            shape,
            nest,
            profile,
        }
    }

    /// The application name.
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The program shape mechanisms see.
    #[must_use]
    pub fn shape(&self) -> &ProgramShape {
        &self.shape
    }

    /// The located two-level nest.
    #[must_use]
    pub fn nest(&self) -> &TwoLevelNest {
        &self.nest
    }

    /// The calibrated service-time profile.
    #[must_use]
    pub fn profile(&self) -> &AmdahlProfile {
        &self.profile
    }

    /// The configuration whose transactions occupy `width` contexts.
    #[must_use]
    pub fn config_for_width(&self, threads: u32, width: u32) -> Config {
        nest::config_for_width(&self.shape, &self.nest, threads, width)
    }

    /// Reads the transaction width out of a configuration.
    #[must_use]
    pub fn width_of(&self, config: &Config) -> u32 {
        nest::width_of(config, &self.nest)
    }

    /// Transaction service time at `width` contexts.
    #[must_use]
    pub fn exec_time(&self, width: u32) -> f64 {
        self.profile.exec_time(width)
    }

    /// Maximum sustainable throughput with transactions of `width`:
    /// `floor(threads / width) / exec_time(width)`.
    ///
    /// The paper's load factor normalizes arrival rates by the width-1
    /// value ("executing each task itself sequentially", §8.2).
    #[must_use]
    pub fn max_throughput(&self, threads: u32, width: u32) -> f64 {
        let slots = (threads / width.max(1)).max(1);
        f64::from(slots) / self.exec_time(width)
    }
}

/// Fixed parameters of a system simulation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SystemParams {
    /// Hardware contexts of the simulated machine.
    pub contexts: u32,
    /// Dead time after a reconfiguration during which the mechanism is not
    /// consulted again (models the suspend/relaunch protocol cost).
    pub reconfig_penalty_secs: f64,
    /// Window for the snapshot's throughput estimate.
    pub throughput_window_secs: f64,
    /// Smoothing factor for the snapshot's execution-time average.
    pub ewma_alpha: f64,
    /// How the front door treats offered requests (default
    /// [`AdmissionPolicy::Open`]): `Shed` drops offers while queue
    /// occupancy is at or above the high watermark, `Deadline` drops
    /// admitted requests whose queue delay exceeds the budget at
    /// dispatch, and `Block` holds offers in a blocked FIFO until
    /// occupancy falls below capacity (closed-loop backpressure —
    /// response times then include the blocking delay). The same
    /// semantics as `dope_workload::admission::AdmissionQueue`, so
    /// shed-vs-block frontiers swept here transfer to the live runtime.
    pub admission: AdmissionPolicy,
}

impl Default for SystemParams {
    /// The paper's machine: 24 contexts, no reconfiguration dead time.
    fn default() -> Self {
        SystemParams {
            contexts: 24,
            reconfig_penalty_secs: 0.0,
            throughput_window_secs: 60.0,
            ewma_alpha: 0.25,
            admission: AdmissionPolicy::Open,
        }
    }
}

/// Results of one system simulation.
#[derive(Debug, Clone)]
pub struct SystemOutcome {
    /// Per-request response times (submission to completion).
    pub response: ResponseStats,
    /// Completion events.
    pub throughput: ThroughputMeter,
    /// Requests completed.
    pub completed: u64,
    /// Time at which the last request completed.
    pub horizon_secs: f64,
    /// Mean transaction service time over all dispatches (Figure 2a's
    /// y-axis).
    pub mean_exec_secs: f64,
    /// Transaction width over time (the oracle's "ideal DoP" trace).
    pub dop_series: TimeSeries,
    /// Applied reconfigurations.
    pub config_changes: u64,
    /// Mechanism proposals rejected by validation.
    pub rejected_configs: u64,
    /// Configuration in force at the end of the run.
    pub final_config: Config,
    /// Admission-gate counters at the end of the run (all zero when
    /// [`SystemParams::admission`] was `Open` — every offer admitted,
    /// nothing shed).
    pub admission: AdmissionStats,
}

impl SystemOutcome {
    /// Mean response time in seconds.
    #[must_use]
    pub fn mean_response(&self) -> f64 {
        self.response.mean().unwrap_or(0.0)
    }

    /// Overall system throughput: completions per second of makespan.
    #[must_use]
    pub fn system_throughput(&self) -> f64 {
        if self.horizon_secs > 0.0 {
            self.completed as f64 / self.horizon_secs
        } else {
            0.0
        }
    }

    /// Goodput: the fraction of *offered* requests that completed, in
    /// `[0, 1]`. Equals `1.0` under `Open` or `Block` admission (no
    /// request is lost) and drops by the shed fraction otherwise.
    #[must_use]
    pub fn goodput_fraction(&self) -> f64 {
        if self.admission.offered == 0 {
            1.0
        } else {
            self.completed as f64 / self.admission.offered as f64
        }
    }
}

struct InFlight {
    finish: OrdF64,
    seq: u64,
    submit: f64,
    width: u32,
}

impl PartialEq for InFlight {
    fn eq(&self, other: &Self) -> bool {
        self.finish == other.finish && self.seq == other.seq
    }
}
impl Eq for InFlight {}
impl PartialOrd for InFlight {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for InFlight {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.finish, self.seq).cmp(&(other.finish, other.seq))
    }
}

/// Simulates the open system over a full arrival schedule, draining all
/// requests.
///
/// The mechanism is consulted once at launch (`initial`) and then on every
/// arrival, mirroring the paper's per-task adaptation.
pub fn run_system(
    model: &TwoLevelModel,
    schedule: &ArrivalSchedule,
    mechanism: &mut dyn Mechanism,
    res: Resources,
    params: &SystemParams,
) -> SystemOutcome {
    run_system_observed(
        model,
        schedule,
        mechanism,
        res,
        params,
        &mut crate::observer::NullObserver,
    )
}

/// [`run_system`] with a [`SimObserver`] watching every decision point.
///
/// The observer sees the launch configuration, each frozen snapshot, each
/// proposal verdict, and each applied configuration — enough to build a
/// replayable flight-recorder trace of the run.
///
/// # Panics
///
/// Panics if `params.admission` fails
/// [`validate`](AdmissionPolicy::validate) — sweep drivers construct
/// policies from validated inputs.
pub fn run_system_observed(
    model: &TwoLevelModel,
    schedule: &ArrivalSchedule,
    mechanism: &mut dyn Mechanism,
    res: Resources,
    params: &SystemParams,
    observer: &mut dyn SimObserver,
) -> SystemOutcome {
    let budget = res.threads.min(params.contexts).max(1);
    let res = Resources {
        threads: budget,
        ..res
    };
    let shape = model.shape();

    let mut config = mechanism
        .initial(shape, &res)
        .filter(|c| c.validate(shape, budget).is_ok())
        .unwrap_or_else(|| model.config_for_width(budget, 1));
    observer.launched(mechanism.name(), budget, shape, &config);
    let mut width = model.width_of(&config).max(1);
    let mut outer_cap = nest::outer_extent_of(&config, model.nest()).max(1);
    let mut exec = model.exec_time(width);

    params
        .admission
        .validate()
        .expect("admission policy must validate");

    let mut now = 0.0_f64;
    let mut queue: VecDeque<(u64, f64)> = VecDeque::new();
    // Offers held back by `Block` admission, stamped with their offer
    // time: they enter `queue` once occupancy falls below capacity, so
    // their eventual response time includes the blocking delay.
    let mut blocked: VecDeque<f64> = VecDeque::new();
    let mut in_flight: BinaryHeap<Reverse<InFlight>> = BinaryHeap::new();
    let mut free = budget;
    let mut active: u32 = 0;
    let mut seq: u64 = 0;

    let mut response = ResponseStats::new();
    let mut throughput = ThroughputMeter::new();
    let mut dop_series = TimeSeries::new("inner DoP extent");
    dop_series.push(0.0, f64::from(width));
    let mut exec_sum = 0.0_f64;
    let mut dispatched: u64 = 0;
    let mut enqueued: u64 = 0;
    let mut completed: u64 = 0;
    let mut offered: u64 = 0;
    let mut admitted: u64 = 0;
    let mut shed_high_water: u64 = 0;
    let mut shed_deadline: u64 = 0;
    let mut queue_delay_sum = 0.0_f64;
    let mut config_changes: u64 = 0;
    let mut rejected: u64 = 0;
    let mut dispatches_since_reconfig: u64 = 0;
    let mut last_reconfig_at = f64::NEG_INFINITY;
    let mut exec_ewma = dope_core::Ewma::new(params.ewma_alpha);
    let mut recent_completions: VecDeque<f64> = VecDeque::new();

    let arrivals = schedule.times();
    let mut next_arrival = 0usize;

    loop {
        // Pick the earliest pending event.
        let arrival_time = arrivals.get(next_arrival).copied();
        let departure_time = in_flight.peek().map(|Reverse(j)| j.finish.get());
        let (event_time, is_arrival) = match (arrival_time, departure_time) {
            (None, None) => break,
            (Some(a), None) => (a, true),
            (None, Some(d)) => (d, false),
            (Some(a), Some(d)) => {
                if a <= d {
                    (a, true)
                } else {
                    (d, false)
                }
            }
        };
        now = event_time;

        if is_arrival {
            next_arrival += 1;
            offered += 1;
            // The front door decides before the work queue sees the
            // offer; a shed offer never enters the system.
            match params.admission {
                AdmissionPolicy::Shed { high_water } if queue.len() >= high_water as usize => {
                    shed_high_water += 1;
                }
                AdmissionPolicy::Block { capacity } if queue.len() >= capacity as usize => {
                    blocked.push_back(now);
                }
                _ => {
                    admitted += 1;
                    enqueued += 1;
                    queue.push_back((enqueued, now));
                }
            }

            // Consult the mechanism at task granularity — shed offers
            // included: the pressure they create is exactly what a
            // shed-aware mechanism needs to see.
            if now - last_reconfig_at >= params.reconfig_penalty_secs {
                let admission = AdmissionStats {
                    offered,
                    admitted,
                    shed_high_water,
                    shed_deadline,
                    mean_queue_delay_secs: if dispatched > 0 {
                        queue_delay_sum / dispatched as f64
                    } else {
                        0.0
                    },
                };
                let snap = build_snapshot(
                    now,
                    &queue,
                    enqueued,
                    completed,
                    dispatches_since_reconfig,
                    exec_ewma.value_or(exec),
                    &recent_completions,
                    params,
                    budget,
                    free,
                    model,
                    admission,
                );
                observer.snapshot_taken(&snap);
                if let Some(proposal) = mechanism.reconfigure(&snap, &config, shape, &res) {
                    match proposal.validate(shape, budget) {
                        Ok(()) if proposal != config => {
                            observer.proposal_evaluated(
                                now,
                                mechanism.name(),
                                &proposal,
                                ProposalOutcome::Accepted,
                            );
                            config = proposal;
                            width = model.width_of(&config).max(1);
                            outer_cap = nest::outer_extent_of(&config, model.nest()).max(1);
                            exec = model.exec_time(width);
                            config_changes += 1;
                            dispatches_since_reconfig = 0;
                            last_reconfig_at = now;
                            dop_series.push(now, f64::from(width));
                            mechanism.applied(&config);
                            observer.config_applied(now, &config);
                        }
                        Ok(()) => observer.proposal_evaluated(
                            now,
                            mechanism.name(),
                            &proposal,
                            ProposalOutcome::Unchanged,
                        ),
                        Err(err) => {
                            rejected += 1;
                            observer.proposal_evaluated(
                                now,
                                mechanism.name(),
                                &proposal,
                                ProposalOutcome::Rejected(err.code()),
                            );
                        }
                    }
                }
                if let Some(trace) = mechanism.explain() {
                    observer.decision_explained(now, mechanism.name(), &trace);
                }
            }
        } else {
            let Reverse(job) = in_flight.pop().expect("departure event exists");
            free += job.width;
            active -= 1;
            completed += 1;
            response.record(now - job.submit);
            throughput.record(now);
            recent_completions.push_back(now);
            let cutoff = now - params.throughput_window_secs;
            while recent_completions.front().is_some_and(|&t| t < cutoff) {
                recent_completions.pop_front();
            }
        }

        // Dispatch as many queued transactions as resources allow,
        // admitting blocked offers as dispatches free queue slots —
        // iterate to a fixpoint so a freed slot admits and a fresh
        // admission dispatches within the same event.
        loop {
            let mut progressed = false;
            if let AdmissionPolicy::Block { capacity } = params.admission {
                while !blocked.is_empty() && queue.len() < capacity as usize {
                    let offer_time = blocked.pop_front().expect("blocked non-empty");
                    admitted += 1;
                    enqueued += 1;
                    queue.push_back((enqueued, offer_time));
                    progressed = true;
                }
            }
            while !queue.is_empty() && active < outer_cap && free >= width {
                let (_, submit) = queue.pop_front().expect("queue non-empty");
                progressed = true;
                if let AdmissionPolicy::Deadline { budget_secs } = params.admission {
                    // Deadline-aware shedding acts at dispatch: the
                    // request's answer is already too late, so serving
                    // it would only delay requests still in budget.
                    if now - submit > budget_secs {
                        shed_deadline += 1;
                        continue;
                    }
                }
                seq += 1;
                let service = exec;
                exec_sum += service;
                dispatched += 1;
                dispatches_since_reconfig += 1;
                queue_delay_sum += (now - submit).max(0.0);
                exec_ewma.update(service);
                free -= width;
                active += 1;
                in_flight.push(Reverse(InFlight {
                    finish: OrdF64::new(now + service),
                    seq,
                    submit,
                    width,
                }));
            }
            if !progressed {
                break;
            }
        }
    }

    SystemOutcome {
        response,
        throughput,
        completed,
        horizon_secs: now,
        mean_exec_secs: if dispatched > 0 {
            exec_sum / dispatched as f64
        } else {
            0.0
        },
        dop_series,
        config_changes,
        rejected_configs: rejected,
        final_config: config,
        admission: AdmissionStats {
            offered,
            admitted,
            shed_high_water,
            shed_deadline,
            mean_queue_delay_secs: if dispatched > 0 {
                queue_delay_sum / dispatched as f64
            } else {
                0.0
            },
        },
    }
}

#[allow(clippy::too_many_arguments)]
fn build_snapshot(
    now: f64,
    queue: &VecDeque<(u64, f64)>,
    enqueued: u64,
    completed: u64,
    dispatches_since_reconfig: u64,
    mean_exec: f64,
    recent_completions: &VecDeque<f64>,
    params: &SystemParams,
    budget: u32,
    free: u32,
    model: &TwoLevelModel,
    admission: AdmissionStats,
) -> MonitorSnapshot {
    let mut snap = MonitorSnapshot::at(now);
    snap.admission = admission;
    snap.queue.occupancy = queue.len() as f64;
    snap.queue.enqueued = enqueued;
    snap.queue.completed = completed;
    snap.queue.arrival_rate = if now > 0.0 {
        enqueued as f64 / now
    } else {
        0.0
    };
    snap.dispatches_since_reconfig = dispatches_since_reconfig;
    let window = params.throughput_window_secs.min(now.max(1e-9));
    let rate = recent_completions.len() as f64 / window;
    snap.tasks.insert(
        model.nest().outer.clone(),
        TaskStats {
            invocations: completed,
            mean_exec_secs: mean_exec,
            throughput: rate,
            load: queue.len() as f64,
            utilization: f64::from(budget - free) / f64::from(budget),
            // Percentile fields stay 0.0: the simulator's monitor is
            // analytic and does not measure latency distributions.
            ..TaskStats::default()
        },
    );
    snap
}

#[cfg(test)]
mod tests {
    use super::*;
    use dope_core::StaticMechanism;

    fn model() -> TwoLevelModel {
        TwoLevelModel::pipeline("transcode", AmdahlProfile::new(10.0, 0.97, 0.1, 0.05))
    }

    fn run_static(width: u32, load: f64, n: usize) -> SystemOutcome {
        let m = model();
        let max_thr = m.max_throughput(24, 1);
        let schedule = ArrivalSchedule::for_load_factor(load, max_thr, n, 7);
        let mut mech = StaticMechanism::new(m.config_for_width(24, width));
        run_system(
            &m,
            &schedule,
            &mut mech,
            Resources::threads(24),
            &SystemParams::default(),
        )
    }

    #[test]
    fn all_requests_complete() {
        let out = run_static(1, 0.5, 200);
        assert_eq!(out.completed, 200);
        assert_eq!(out.response.count(), 200);
        assert_eq!(out.throughput.completed(), 200);
    }

    #[test]
    fn light_load_response_approximates_exec_time() {
        let m = model();
        let wide = run_static(8, 0.1, 200);
        let expected = m.exec_time(8);
        let mean = wide.mean_response();
        assert!(
            (mean - expected).abs() / expected < 0.15,
            "mean {mean} vs exec {expected}"
        );
    }

    #[test]
    fn parallel_beats_sequential_at_light_load() {
        let seq = run_static(1, 0.2, 300);
        let par = run_static(8, 0.2, 300);
        assert!(
            par.mean_response() < seq.mean_response() / 2.0,
            "par {} vs seq {}",
            par.mean_response(),
            seq.mean_response()
        );
    }

    #[test]
    fn sequential_beats_parallel_at_saturation() {
        let seq = run_static(1, 1.0, 400);
        let par = run_static(8, 1.0, 400);
        assert!(
            seq.mean_response() < par.mean_response(),
            "seq {} vs par {}",
            seq.mean_response(),
            par.mean_response()
        );
        // And sustains higher throughput (Figure 2b's crossover).
        assert!(seq.system_throughput() > par.system_throughput());
    }

    #[test]
    fn mean_exec_matches_profile() {
        let m = model();
        let out = run_static(8, 0.5, 100);
        assert!((out.mean_exec_secs - m.exec_time(8)).abs() < 1e-9);
    }

    #[test]
    fn outcome_is_deterministic() {
        let a = run_static(4, 0.7, 150);
        let b = run_static(4, 0.7, 150);
        assert_eq!(a.mean_response(), b.mean_response());
        assert_eq!(a.horizon_secs, b.horizon_secs);
    }

    #[test]
    fn invalid_initial_config_falls_back() {
        let m = model();
        // Budget 4 but static config wants width 8 x outer: invalid.
        let bad = m.config_for_width(24, 8);
        let mut mech = StaticMechanism::new(bad);
        let schedule = ArrivalSchedule::uniform(1.0, 10);
        let out = run_system(
            &m,
            &schedule,
            &mut mech,
            Resources::threads(4),
            &SystemParams::default(),
        );
        assert_eq!(out.completed, 10);
        assert!(out.rejected_configs > 0);
    }

    fn run_overloaded(admission: AdmissionPolicy, load: f64, n: usize) -> SystemOutcome {
        let m = model();
        let max_thr = m.max_throughput(24, 1);
        let schedule = ArrivalSchedule::for_load_factor(load, max_thr, n, 7);
        let mut mech = StaticMechanism::new(m.config_for_width(24, 1));
        run_system(
            &m,
            &schedule,
            &mut mech,
            Resources::threads(24),
            &SystemParams {
                admission,
                ..SystemParams::default()
            },
        )
    }

    #[test]
    fn open_admission_admits_everything_and_counts() {
        let out = run_overloaded(AdmissionPolicy::Open, 2.0, 300);
        assert_eq!(out.admission.offered, 300);
        assert_eq!(out.admission.admitted, 300);
        assert_eq!(out.admission.shed(), 0);
        assert_eq!(out.completed, 300);
        assert!((out.goodput_fraction() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn shed_bounds_queue_delay_at_the_cost_of_goodput() {
        let open = run_overloaded(AdmissionPolicy::Open, 3.0, 400);
        let shed = run_overloaded(AdmissionPolicy::Shed { high_water: 8 }, 3.0, 400);
        // Conservation: every offer is admitted or shed, never both.
        assert_eq!(shed.admission.offered, 400);
        assert_eq!(
            shed.admission.offered,
            shed.admission.admitted + shed.admission.shed_high_water
        );
        assert!(shed.admission.shed_high_water > 0, "3x load must overflow");
        assert_eq!(shed.completed, shed.admission.admitted);
        // The point of shedding: admitted requests see bounded queueing
        // while the open queue's delay grows with the backlog.
        assert!(
            shed.admission.mean_queue_delay_secs < open.admission.mean_queue_delay_secs / 4.0,
            "shed {} vs open {}",
            shed.admission.mean_queue_delay_secs,
            open.admission.mean_queue_delay_secs
        );
        assert!(shed.goodput_fraction() < 1.0);
    }

    #[test]
    fn block_loses_nothing_and_throttles_arrivals() {
        let out = run_overloaded(AdmissionPolicy::Block { capacity: 4 }, 3.0, 300);
        assert_eq!(out.admission.offered, 300);
        assert_eq!(out.admission.admitted, 300);
        assert_eq!(out.admission.shed(), 0);
        assert_eq!(out.completed, 300);
        // Blocking delay is real latency: responses include the wait at
        // the front door, so the mean exceeds the bare service time.
        assert!(out.mean_response() > model().exec_time(1));
    }

    #[test]
    fn deadline_sheds_stale_requests_at_dispatch() {
        let m = model();
        let out = run_overloaded(
            AdmissionPolicy::Deadline {
                budget_secs: m.exec_time(1) * 4.0,
            },
            3.0,
            400,
        );
        assert_eq!(out.admission.offered, 400);
        assert_eq!(out.admission.admitted, 400);
        assert!(out.admission.shed_deadline > 0, "3x load must miss budgets");
        assert!(out.admission.shed_deadline <= out.admission.admitted);
        assert_eq!(
            out.completed,
            out.admission.admitted - out.admission.shed_deadline
        );
        // Served requests were, by construction, within budget when
        // dispatched.
        assert!(out.admission.mean_queue_delay_secs <= m.exec_time(1) * 4.0);
    }

    #[test]
    fn admission_outcomes_are_deterministic() {
        let a = run_overloaded(AdmissionPolicy::Shed { high_water: 8 }, 2.0, 200);
        let b = run_overloaded(AdmissionPolicy::Shed { high_water: 8 }, 2.0, 200);
        assert_eq!(a.admission, b.admission);
        assert_eq!(a.completed, b.completed);
    }

    #[test]
    fn max_throughput_scales_with_slots() {
        let m = model();
        let t1 = m.profile().t1();
        assert!((m.max_throughput(24, 1) - 24.0 / t1).abs() < 1e-12);
        let w8 = m.max_throughput(24, 8);
        assert!((w8 - 3.0 / m.exec_time(8)).abs() < 1e-12);
    }
}
