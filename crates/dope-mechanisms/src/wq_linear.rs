//! Work Queue Linear (paper §7.1, Equation 2).

use dope_core::nest::{self, TwoLevelNest};
use dope_core::{
    realized_throughput, Config, DecisionCandidate, DecisionTrace, Mechanism, MonitorSnapshot,
    ProgramShape, Rationale, Resources,
};

/// *Work Queue Linear*: varies the inner DoP extent continuously with
/// work-queue occupancy instead of toggling between two values,
///
/// ```text
/// DoP_extent = max(Mmin, Mmax - k x WQo),   k = (Mmax - Mmin) / Qmax
/// ```
///
/// where `WQo` is the instantaneous work-queue occupancy and `Qmax` is
/// derived from the maximum response-time degradation acceptable to the
/// end user (paper Equation 3). This yields the paper's best response-time
/// characteristic across the whole load range (Figure 11).
///
/// # Example
///
/// ```
/// use dope_mechanisms::WqLinear;
///
/// let mech = WqLinear::new(1, 8, 16.0);
/// assert_eq!(mech.width_for_occupancy(0.0), 8);  // empty queue: latency mode
/// assert_eq!(mech.width_for_occupancy(16.0), 1); // saturated: throughput mode
/// assert_eq!(mech.width_for_occupancy(8.0), 5);  // graceful degradation
/// ```
#[derive(Debug, Clone)]
pub struct WqLinear {
    m_min: u32,
    m_max: u32,
    q_max: f64,
    nest: Option<TwoLevelNest>,
    last_decision: Option<DecisionTrace>,
}

impl WqLinear {
    /// A WQ-Linear mechanism varying the width in `[m_min, m_max]` with
    /// slope `(m_max - m_min) / q_max`.
    ///
    /// # Panics
    ///
    /// Panics if `m_min` is zero, `m_max < m_min`, or `q_max` is not
    /// positive.
    #[must_use]
    pub fn new(m_min: u32, m_max: u32, q_max: f64) -> Self {
        assert!(m_min >= 1, "Mmin must be at least 1");
        assert!(m_max >= m_min, "Mmax must be at least Mmin");
        assert!(q_max > 0.0, "Qmax must be positive");
        WqLinear {
            m_min,
            m_max,
            q_max,
            nest: None,
            last_decision: None,
        }
    }

    /// The rate of DoP-extent reduction `k` (Equation 3).
    #[must_use]
    pub fn k(&self) -> f64 {
        f64::from(self.m_max - self.m_min) / self.q_max
    }

    /// The width Equation 2 assigns at queue occupancy `occupancy`.
    #[must_use]
    pub fn width_for_occupancy(&self, occupancy: f64) -> u32 {
        let raw = f64::from(self.m_max) - self.k() * occupancy.max(0.0);
        let rounded = raw.round();
        (rounded.max(f64::from(self.m_min)) as u32).clamp(self.m_min, self.m_max)
    }
}

impl Default for WqLinear {
    /// `Mmin = 1`, `Mmax = 8`, `Qmax = 16` outstanding requests.
    fn default() -> Self {
        WqLinear::new(1, 8, 16.0)
    }
}

impl Mechanism for WqLinear {
    fn name(&self) -> &'static str {
        "WQ-Linear"
    }

    fn initial(&mut self, shape: &ProgramShape, res: &Resources) -> Option<Config> {
        self.nest = nest::find_two_level(shape);
        let nest = self.nest.as_ref()?;
        Some(nest::config_for_width(shape, nest, res.threads, self.m_max))
    }

    fn reconfigure(
        &mut self,
        snap: &MonitorSnapshot,
        current: &Config,
        shape: &ProgramShape,
        res: &Resources,
    ) -> Option<Config> {
        if self.nest.is_none() {
            self.nest = nest::find_two_level(shape);
        }
        let nest = self.nest.clone()?;
        let occ = snap.queue.occupancy;
        let width = self.width_for_occupancy(occ);
        let cur_width = nest::width_of(current, &nest);
        let changed = cur_width != width;

        // Audit trail: every width on the Eq.-2 segment is a candidate,
        // scored by its (negative) distance to the unclamped target.
        // Predictions scale the measured bottleneck linearly with width.
        let raw_target = f64::from(self.m_max) - self.k() * occ.max(0.0);
        let base = realized_throughput(snap).filter(|_| cur_width > 0);
        let predict = |w: u32| base.map(|t| t * f64::from(w) / f64::from(cur_width));
        let chosen = if changed {
            format!("width={width}")
        } else {
            "hold".to_string()
        };
        let mut trace = DecisionTrace::new(Rationale::OccupancyLinear, chosen)
            .observing("queue_occupancy", occ)
            .observing("current_width", f64::from(cur_width))
            .observing("target_width", f64::from(width));
        for w in self.m_min..=self.m_max {
            let mut candidate =
                DecisionCandidate::new(format!("width={w}"), -(raw_target - f64::from(w)).abs());
            if let Some(t) = predict(w) {
                candidate = candidate.predicting(t);
            }
            trace = trace.candidate(candidate);
        }
        if let Some(t) = predict(width) {
            trace = trace.predicting(t);
        }
        self.last_decision = Some(trace);

        if !changed {
            return None;
        }
        Some(nest::config_for_width(shape, &nest, res.threads, width))
    }

    fn explain(&self) -> Option<DecisionTrace> {
        self.last_decision.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dope_core::{ShapeNode, TaskKind};

    fn shape() -> ProgramShape {
        ProgramShape::new(vec![ShapeNode {
            name: "price".into(),
            kind: TaskKind::Par,
            max_extent: None,
            alternatives: vec![vec![ShapeNode::leaf("trials", TaskKind::Par)]],
        }])
    }

    #[test]
    fn width_is_monotone_nonincreasing_in_occupancy() {
        let mech = WqLinear::new(1, 8, 16.0);
        let mut last = u32::MAX;
        for occ in 0..40 {
            let w = mech.width_for_occupancy(f64::from(occ));
            assert!(w <= last, "width increased at occupancy {occ}");
            last = w;
        }
    }

    #[test]
    fn width_saturates_at_bounds() {
        let mech = WqLinear::new(2, 10, 8.0);
        assert_eq!(mech.width_for_occupancy(0.0), 10);
        assert_eq!(mech.width_for_occupancy(1000.0), 2);
        assert_eq!(mech.width_for_occupancy(-5.0), 10);
    }

    #[test]
    fn slope_matches_equation_three() {
        let mech = WqLinear::new(1, 9, 4.0);
        assert!((mech.k() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn reconfigures_only_on_width_change() {
        let shape = shape();
        let res = Resources::threads(24);
        let mut mech = WqLinear::new(1, 8, 16.0);
        let current = mech.initial(&shape, &res).unwrap();
        let mut snap = MonitorSnapshot::at(0.0);
        snap.queue.occupancy = 0.0;
        // Occupancy 0 keeps Mmax: no change.
        assert!(mech.reconfigure(&snap, &current, &shape, &res).is_none());
        snap.queue.occupancy = 16.0;
        let new = mech.reconfigure(&snap, &current, &shape, &res).unwrap();
        let nest = nest::find_two_level(&shape).unwrap();
        assert_eq!(nest::width_of(&new, &nest), 1);
        new.validate(&shape, 24).unwrap();
    }

    #[test]
    fn initial_config_uses_m_max() {
        let shape = shape();
        let mut mech = WqLinear::new(1, 6, 10.0);
        let config = mech.initial(&shape, &Resources::threads(24)).unwrap();
        let nest = nest::find_two_level(&shape).unwrap();
        assert_eq!(nest::width_of(&config, &nest), 6);
        assert_eq!(nest::outer_extent_of(&config, &nest), 4);
    }

    #[test]
    #[should_panic(expected = "Qmax must be positive")]
    fn zero_qmax_panics() {
        let _ = WqLinear::new(1, 8, 0.0);
    }
}
