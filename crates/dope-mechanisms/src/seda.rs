//! The SEDA controller (Welsh et al., SOSP 2001), as a DoPE mechanism.

use crate::pipeline_util;
use dope_core::{
    Config, DecisionCandidate, DecisionTrace, Mechanism, MonitorSnapshot, ProgramShape, Rationale,
    Resources,
};

/// The *Staged Event-Driven Architecture* controller: each stage resizes
/// its thread pool **locally**, adding a worker when its input queue grows
/// past a watermark and removing one when it idles — "without
/// coordinating resource allocation with other tasks" (paper §8.2.2).
///
/// The lack of global coordination is the point of implementing it: DoPE's
/// own mechanisms (FDP, TBF) redistribute a global budget and beat SEDA in
/// Figure 15.
///
/// # Example
///
/// ```
/// use dope_mechanisms::Seda;
///
/// let seda = Seda::new(4.0, 0.5, 24);
/// assert_eq!(dope_core::Mechanism::name(&seda), "SEDA");
/// ```
#[derive(Debug, Clone)]
pub struct Seda {
    high_watermark: f64,
    low_watermark: f64,
    per_stage_cap: u32,
    last_decision: Option<DecisionTrace>,
}

impl Seda {
    /// A SEDA controller that grows a stage when its queue exceeds
    /// `high_watermark` items and shrinks it below `low_watermark`, up to
    /// `per_stage_cap` workers per stage.
    ///
    /// # Panics
    ///
    /// Panics if the watermarks are inverted or the cap is zero.
    #[must_use]
    pub fn new(high_watermark: f64, low_watermark: f64, per_stage_cap: u32) -> Self {
        assert!(
            high_watermark >= low_watermark,
            "high watermark below low watermark"
        );
        assert!(per_stage_cap >= 1, "per-stage cap must be at least 1");
        Seda {
            high_watermark,
            low_watermark,
            per_stage_cap,
            last_decision: None,
        }
    }
}

impl Default for Seda {
    /// Grow above 4 queued items, shrink below 0.5, cap at 24 per stage.
    fn default() -> Self {
        Seda::new(4.0, 0.5, 24)
    }
}

impl Mechanism for Seda {
    fn name(&self) -> &'static str {
        "SEDA"
    }

    fn reconfigure(
        &mut self,
        snap: &MonitorSnapshot,
        current: &Config,
        shape: &ProgramShape,
        _res: &Resources,
    ) -> Option<Config> {
        let (alt, views) = pipeline_util::stages(snap, current, shape)?;
        if views.iter().all(|v| v.mean_exec <= 0.0) {
            return None;
        }
        let mut extents: Vec<u32> = views.iter().map(|v| v.extent).collect();
        let mut changed = false;
        let mut grew = false;
        let mut shrank = false;
        let mut candidates = Vec::new();
        for (i, view) in views.iter().enumerate() {
            if !view.parallel {
                continue;
            }
            let cap = view
                .max_extent
                .unwrap_or(self.per_stage_cap)
                .min(self.per_stage_cap);
            // Local decision: look only at this stage's own queue.
            if view.load > self.high_watermark && extents[i] < cap {
                extents[i] += 1;
                changed = true;
                grew = true;
                candidates.push(DecisionCandidate::new(
                    format!("{}: grow {} -> {}", view.name, view.extent, extents[i]),
                    view.load - self.high_watermark,
                ));
            } else if view.load < self.low_watermark && extents[i] > 1 && view.utilization < 0.5 {
                extents[i] -= 1;
                changed = true;
                shrank = true;
                candidates.push(DecisionCandidate::new(
                    format!("{}: shrink {} -> {}", view.name, view.extent, extents[i]),
                    self.low_watermark - view.load,
                ));
            } else {
                candidates.push(DecisionCandidate::new(format!("{}: hold", view.name), 0.0));
            }
        }

        // Audit trail: the dominant clause is growth (backlog) when any
        // stage grew; otherwise shrink (idleness); otherwise hold.
        let rationale = match (grew, shrank) {
            (true, _) => Rationale::QueueAboveHighWater,
            (false, true) => Rationale::QueueBelowLowWater,
            (false, false) => Rationale::Hold,
        };
        let chosen = if changed {
            pipeline_util::extents_label(&extents)
        } else {
            "hold".to_string()
        };
        let mut trace = DecisionTrace::new(rationale, chosen)
            .observing("high_watermark", self.high_watermark)
            .observing("low_watermark", self.low_watermark);
        for view in &views {
            trace = trace.observing(format!("{}_load", view.name), view.load);
        }
        for candidate in candidates {
            trace = trace.candidate(candidate);
        }
        if let Some(rate) = pipeline_util::bottleneck_rate(&views, &extents) {
            trace = trace.predicting(rate);
        }
        self.last_decision = Some(trace);

        if !changed {
            return None;
        }
        pipeline_util::config_from_extents(current, alt, shape, &extents)
    }

    fn explain(&self) -> Option<DecisionTrace> {
        self.last_decision.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dope_core::{ShapeNode, TaskConfig, TaskKind, TaskPath, TaskStats};

    fn shape() -> ProgramShape {
        ProgramShape::new(vec![ShapeNode {
            name: "pipe".into(),
            kind: TaskKind::Par,
            max_extent: Some(1),
            alternatives: vec![vec![
                ShapeNode::leaf("in", TaskKind::Seq),
                ShapeNode::leaf("a", TaskKind::Par),
                ShapeNode::leaf("b", TaskKind::Par),
            ]],
        }])
    }

    fn config(extents: &[u32]) -> Config {
        Config::new(vec![TaskConfig::nest(
            "pipe",
            1,
            0,
            vec![
                TaskConfig::leaf("in", extents[0]),
                TaskConfig::leaf("a", extents[1]),
                TaskConfig::leaf("b", extents[2]),
            ],
        )])
    }

    fn snap(loads: &[f64], utils: &[f64]) -> MonitorSnapshot {
        let mut s = MonitorSnapshot::at(1.0);
        for i in 0..loads.len() {
            s.tasks.insert(
                TaskPath::root_child(0).child(i as u16),
                TaskStats {
                    invocations: 10,
                    mean_exec_secs: 0.01,
                    throughput: 100.0,
                    load: loads[i],
                    utilization: utils[i],
                    ..TaskStats::default()
                },
            );
        }
        s
    }

    #[test]
    fn grows_backlogged_stage() {
        let mut seda = Seda::default();
        let new = seda
            .reconfigure(
                &snap(&[0.0, 10.0, 0.0], &[1.0, 1.0, 0.9]),
                &config(&[1, 2, 2]),
                &shape(),
                &Resources::threads(24),
            )
            .unwrap();
        assert_eq!(new.extent_of(&"0.1".parse().unwrap()), Some(3));
        assert_eq!(new.extent_of(&"0.2".parse().unwrap()), Some(2));
    }

    #[test]
    fn shrinks_idle_stage() {
        let mut seda = Seda::default();
        let new = seda
            .reconfigure(
                &snap(&[0.0, 0.0, 10.0], &[1.0, 0.1, 1.0]),
                &config(&[1, 4, 2]),
                &shape(),
                &Resources::threads(24),
            )
            .unwrap();
        assert_eq!(new.extent_of(&"0.1".parse().unwrap()), Some(3));
        assert_eq!(new.extent_of(&"0.2".parse().unwrap()), Some(3));
    }

    #[test]
    fn never_touches_sequential_stages() {
        let mut seda = Seda::default();
        let new = seda
            .reconfigure(
                &snap(&[50.0, 10.0, 10.0], &[1.0, 1.0, 1.0]),
                &config(&[1, 2, 2]),
                &shape(),
                &Resources::threads(24),
            )
            .unwrap();
        assert_eq!(new.extent_of(&"0.0".parse().unwrap()), Some(1));
    }

    #[test]
    fn quiescent_when_watermarks_satisfied() {
        let mut seda = Seda::default();
        assert!(seda
            .reconfigure(
                &snap(&[0.0, 2.0, 2.0], &[1.0, 0.9, 0.9]),
                &config(&[1, 2, 2]),
                &shape(),
                &Resources::threads(24),
            )
            .is_none());
    }

    #[test]
    fn uncoordinated_growth_can_exceed_a_global_budget() {
        // This documents SEDA's defining flaw: both stages grow at once
        // regardless of any global constraint.
        let mut seda = Seda::default();
        let new = seda
            .reconfigure(
                &snap(&[0.0, 10.0, 10.0], &[1.0, 1.0, 1.0]),
                &config(&[1, 12, 11]),
                &shape(),
                &Resources::threads(24),
            )
            .unwrap();
        assert!(new.total_threads() > 24);
    }
}
