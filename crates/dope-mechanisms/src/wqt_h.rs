//! Work Queue Threshold with Hysteresis (paper §7.1).

use dope_core::nest::{self, TwoLevelNest};
use dope_core::{
    realized_throughput, Config, DecisionCandidate, DecisionTrace, Mechanism, MonitorSnapshot,
    ProgramShape, Rationale, Resources,
};

/// The two states of the WQT-H machine.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Mode {
    /// Throughput mode: sequential transactions (`DoP extent 1`).
    Seq,
    /// Latency mode: transactions at `Mmax` (`DoP extent Mmax`).
    Par,
}

/// *Work Queue Threshold with Hysteresis*: a two-state machine that
/// toggles between a latency-mode configuration (inner DoP extent `Mmax`)
/// and a throughput-mode configuration (sequential transactions) based on
/// work-queue occupancy, with hysteresis to avoid toggling on noise.
///
/// From the paper: "Initially, WQT-H is in the SEQ state... When the
/// occupancy of the work queue remains under a threshold T for more than
/// N_off consecutive tasks, WQT-H transitions to the PAR state... WQT-H
/// stays in the PAR state until the work queue \[occupancy\] increases above
/// T and stays like that for more than N_on tasks."
///
/// # Example
///
/// ```
/// use dope_mechanisms::WqtH;
///
/// let mech = WqtH::new(6.0, 8, 4, 4);
/// assert_eq!(dope_core::Mechanism::name(&mech), "WQT-H");
/// ```
#[derive(Debug, Clone)]
pub struct WqtH {
    threshold: f64,
    m_max: u32,
    n_on: u64,
    n_off: u64,
    mode: Mode,
    streak: u64,
    last_dispatches: u64,
    nest: Option<TwoLevelNest>,
    last_decision: Option<DecisionTrace>,
}

impl WqtH {
    /// A WQT-H machine with queue threshold `threshold`, latency-mode
    /// width `m_max`, and hysteresis lengths `n_on` (PAR→SEQ) and `n_off`
    /// (SEQ→PAR), both in observed tasks.
    ///
    /// # Panics
    ///
    /// Panics if `threshold` is negative or `m_max` is zero.
    #[must_use]
    pub fn new(threshold: f64, m_max: u32, n_on: u64, n_off: u64) -> Self {
        assert!(threshold >= 0.0, "threshold must be non-negative");
        assert!(m_max >= 1, "Mmax must be at least 1");
        WqtH {
            threshold,
            m_max,
            n_on,
            n_off,
            mode: Mode::Seq,
            streak: 0,
            last_dispatches: 0,
            nest: None,
            last_decision: None,
        }
    }

    /// Weights the hysteresis in favour of one state (the paper's
    /// `N_off >> N_on` example switches to PAR only under the lightest of
    /// loads).
    #[must_use]
    pub fn with_hysteresis(mut self, n_on: u64, n_off: u64) -> Self {
        self.n_on = n_on;
        self.n_off = n_off;
        self
    }

    /// The current latency-mode width.
    #[must_use]
    pub fn m_max(&self) -> u32 {
        self.m_max
    }

    fn target_width(&self) -> u32 {
        match self.mode {
            Mode::Seq => 1,
            Mode::Par => self.m_max,
        }
    }
}

impl Default for WqtH {
    /// Threshold 6 outstanding requests, `Mmax = 8`, symmetric hysteresis
    /// of 4 tasks.
    fn default() -> Self {
        WqtH::new(6.0, 8, 4, 4)
    }
}

impl Mechanism for WqtH {
    fn name(&self) -> &'static str {
        "WQT-H"
    }

    fn initial(&mut self, shape: &ProgramShape, res: &Resources) -> Option<Config> {
        self.nest = nest::find_two_level(shape);
        let nest = self.nest.as_ref()?;
        Some(nest::config_for_width(shape, nest, res.threads, 1))
    }

    fn reconfigure(
        &mut self,
        snap: &MonitorSnapshot,
        current: &Config,
        shape: &ProgramShape,
        res: &Resources,
    ) -> Option<Config> {
        if self.nest.is_none() {
            self.nest = nest::find_two_level(shape);
        }
        let nest = self.nest.clone()?;

        // Count observed tasks (dispatches) since our last observation.
        let observed = snap
            .dispatches_since_reconfig
            .saturating_sub(self.last_dispatches)
            .max(1);
        self.last_dispatches = snap.dispatches_since_reconfig;

        let occ = snap.queue.occupancy;
        let mode_before = self.mode;
        match self.mode {
            Mode::Seq if occ < self.threshold => {
                self.streak += observed;
                if self.streak > self.n_off {
                    self.mode = Mode::Par;
                    self.streak = 0;
                }
            }
            Mode::Par if occ > self.threshold => {
                self.streak += observed;
                if self.streak > self.n_on {
                    self.mode = Mode::Seq;
                    self.streak = 0;
                }
            }
            _ => self.streak = 0,
        }

        let width = self.target_width();
        let cur_width = nest::width_of(current, &nest);
        let changed = cur_width != width;

        // Audit trail: the machine only ever weighs its two states.
        let flipped = self.mode != mode_before;
        let rationale = match (flipped, self.streak) {
            (true, _) => Rationale::ThresholdCrossed,
            (false, s) if s > 0 => Rationale::HysteresisPending,
            _ => Rationale::Hold,
        };
        let base = realized_throughput(snap).filter(|_| cur_width > 0);
        let predict = |w: u32| base.map(|t| t * f64::from(w) / f64::from(cur_width));
        let chosen = if changed {
            format!("width={width}")
        } else {
            "hold".to_string()
        };
        let mut trace = DecisionTrace::new(rationale, chosen)
            .observing("queue_occupancy", occ)
            .observing("threshold", self.threshold)
            .observing("streak", self.streak as f64)
            .observing("current_width", f64::from(cur_width));
        for w in [1, self.m_max] {
            let on_side = (w == 1) == (occ > self.threshold);
            let mut candidate =
                DecisionCandidate::new(format!("width={w}"), if on_side { 1.0 } else { 0.0 });
            if let Some(t) = predict(w) {
                candidate = candidate.predicting(t);
            }
            trace = trace.candidate(candidate);
        }
        if let Some(t) = predict(width) {
            trace = trace.predicting(t);
        }
        self.last_decision = Some(trace);

        if !changed {
            return None;
        }
        Some(nest::config_for_width(shape, &nest, res.threads, width))
    }

    fn applied(&mut self, _config: &Config) {
        self.last_dispatches = 0;
    }

    fn explain(&self) -> Option<DecisionTrace> {
        self.last_decision.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dope_core::{ShapeNode, TaskKind};

    fn shape() -> ProgramShape {
        ProgramShape::new(vec![ShapeNode {
            name: "transcode".into(),
            kind: TaskKind::Par,
            max_extent: None,
            alternatives: vec![
                vec![
                    ShapeNode::leaf("read", TaskKind::Seq),
                    ShapeNode::leaf("transform", TaskKind::Par),
                    ShapeNode::leaf("write", TaskKind::Seq),
                ],
                vec![ShapeNode::leaf("whole", TaskKind::Seq)],
            ],
        }])
    }

    fn snap_with_occupancy(occ: f64, dispatches: u64) -> MonitorSnapshot {
        let mut snap = MonitorSnapshot::at(1.0);
        snap.queue.occupancy = occ;
        snap.dispatches_since_reconfig = dispatches;
        snap
    }

    fn drive(mech: &mut WqtH, shape: &ProgramShape, occ: f64, steps: u64) -> Option<Config> {
        let res = Resources::threads(24);
        let mut current = mech.initial(shape, &res).unwrap();
        let mut last = None;
        for i in 1..=steps {
            let snap = snap_with_occupancy(occ, i);
            if let Some(c) = mech.reconfigure(&snap, &current, shape, &res) {
                current = c.clone();
                mech.applied(&current);
                last = Some(current.clone());
            }
        }
        last
    }

    #[test]
    fn starts_sequential() {
        let shape = shape();
        let mut mech = WqtH::default();
        let config = mech.initial(&shape, &Resources::threads(24)).unwrap();
        let nest = nest::find_two_level(&shape).unwrap();
        assert_eq!(nest::width_of(&config, &nest), 1);
        assert_eq!(config.total_threads(), 24);
    }

    #[test]
    fn switches_to_par_under_light_load_after_hysteresis() {
        let shape = shape();
        let mut mech = WqtH::new(6.0, 8, 4, 4);
        let nest = nest::find_two_level(&shape).unwrap();
        // Below threshold: after more than n_off observations, go PAR.
        let config = drive(&mut mech, &shape, 1.0, 6).expect("reconfigures");
        assert_eq!(nest::width_of(&config, &nest), 8);
    }

    #[test]
    fn stays_sequential_under_heavy_load() {
        let shape = shape();
        let mut mech = WqtH::new(6.0, 8, 4, 4);
        assert!(drive(&mut mech, &shape, 50.0, 20).is_none());
    }

    #[test]
    fn returns_to_seq_when_queue_grows() {
        let shape = shape();
        let nest = nest::find_two_level(&shape).unwrap();
        let mut mech = WqtH::new(6.0, 8, 4, 4);
        let par = drive(&mut mech, &shape, 0.0, 6).unwrap();
        assert_eq!(nest::width_of(&par, &nest), 8);
        let seq = drive(&mut mech, &shape, 30.0, 6).unwrap();
        assert_eq!(nest::width_of(&seq, &nest), 1);
    }

    #[test]
    fn hysteresis_resists_flapping() {
        let shape = shape();
        let res = Resources::threads(24);
        let mut mech = WqtH::new(6.0, 8, 4, 4);
        let current = mech.initial(&shape, &res).unwrap();
        // Alternate above/below threshold: the streak resets each time, so
        // no transition ever fires.
        for i in 1..=20u64 {
            let occ = if i % 2 == 0 { 1.0 } else { 50.0 };
            let snap = snap_with_occupancy(occ, i);
            assert!(
                mech.reconfigure(&snap, &current, &shape, &res).is_none(),
                "flapped at step {i}"
            );
        }
    }

    #[test]
    fn asymmetric_hysteresis_biases_transitions() {
        let shape = shape();
        // N_off >> N_on: very reluctant to enter PAR.
        let mut mech = WqtH::new(6.0, 8, 2, 1000);
        assert!(drive(&mut mech, &shape, 0.0, 100).is_none());
        let mut eager = WqtH::new(6.0, 8, 2, 2);
        assert!(drive(&mut eager, &shape, 0.0, 100).is_some());
    }

    #[test]
    fn proposed_configs_validate() {
        let shape = shape();
        let mut mech = WqtH::new(6.0, 8, 1, 1);
        let config = drive(&mut mech, &shape, 0.0, 5).unwrap();
        config.validate(&shape, 24).unwrap();
    }
}
