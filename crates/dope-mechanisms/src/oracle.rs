//! The oracle of Figure 2(c): continuously picks the ideal DoP for the
//! observed load.

use dope_core::nest::{self, TwoLevelNest};
use dope_core::{
    realized_throughput, Config, DecisionCandidate, DecisionTrace, Mechanism, MonitorSnapshot,
    ProgramShape, Rationale, Resources,
};

/// An oracle that maps work-queue occupancy directly to the best
/// transaction width, using a table computed offline (e.g. by sweeping
/// static configurations per load factor).
///
/// The paper uses such an oracle to show that "a mere turn inner
/// parallelism on/off approach is suboptimal; an oracle that can predict
/// load and change DoP continuously achieves significantly better response
/// time" (Figure 2c).
///
/// # Example
///
/// ```
/// use dope_mechanisms::Oracle;
///
/// // Empty queue: width 8; up to 4 outstanding: width 4; beyond: serial.
/// let oracle = Oracle::from_table(vec![(0.5, 8), (4.0, 4)], 1);
/// assert_eq!(oracle.width_for_occupancy(0.0), 8);
/// assert_eq!(oracle.width_for_occupancy(2.0), 4);
/// assert_eq!(oracle.width_for_occupancy(100.0), 1);
/// ```
#[derive(Debug, Clone)]
pub struct Oracle {
    /// `(occupancy_upper_bound, width)` entries, ascending by bound.
    table: Vec<(f64, u32)>,
    fallback: u32,
    nest: Option<TwoLevelNest>,
    last_decision: Option<DecisionTrace>,
}

impl Oracle {
    /// An oracle from `(occupancy_upper_bound, width)` entries; occupancy
    /// beyond every bound uses `fallback`.
    ///
    /// # Panics
    ///
    /// Panics if bounds are not strictly ascending or a width is zero.
    #[must_use]
    pub fn from_table(table: Vec<(f64, u32)>, fallback: u32) -> Self {
        assert!(fallback >= 1, "fallback width must be at least 1");
        for pair in table.windows(2) {
            assert!(
                pair[0].0 < pair[1].0,
                "occupancy bounds must be strictly ascending"
            );
        }
        assert!(
            table.iter().all(|&(_, w)| w >= 1),
            "widths must be at least 1"
        );
        Oracle {
            table,
            fallback,
            nest: None,
            last_decision: None,
        }
    }

    /// The width the oracle picks at `occupancy`.
    #[must_use]
    pub fn width_for_occupancy(&self, occupancy: f64) -> u32 {
        for &(bound, width) in &self.table {
            if occupancy <= bound {
                return width;
            }
        }
        self.fallback
    }
}

impl Mechanism for Oracle {
    fn name(&self) -> &'static str {
        "Oracle"
    }

    fn initial(&mut self, shape: &ProgramShape, res: &Resources) -> Option<Config> {
        self.nest = nest::find_two_level(shape);
        let nest = self.nest.as_ref()?;
        let width = self.width_for_occupancy(0.0);
        Some(nest::config_for_width(shape, nest, res.threads, width))
    }

    fn reconfigure(
        &mut self,
        snap: &MonitorSnapshot,
        current: &Config,
        shape: &ProgramShape,
        res: &Resources,
    ) -> Option<Config> {
        if self.nest.is_none() {
            self.nest = nest::find_two_level(shape);
        }
        let nest = self.nest.clone()?;
        let occ = snap.queue.occupancy;
        let width = self.width_for_occupancy(occ);
        let cur_width = nest::width_of(current, &nest);
        let changed = cur_width != width;

        // Audit trail: one candidate per table row (plus the fallback),
        // scored 1.0 for the matching row and 0.0 otherwise.
        let base = realized_throughput(snap).filter(|_| cur_width > 0);
        let predict = |w: u32| base.map(|t| t * f64::from(w) / f64::from(cur_width));
        let chosen = if changed {
            format!("width={width}")
        } else {
            "hold".to_string()
        };
        let mut trace = DecisionTrace::new(Rationale::OracleLookup, chosen)
            .observing("queue_occupancy", occ)
            .observing("current_width", f64::from(cur_width))
            .observing("target_width", f64::from(width));
        let rows = self
            .table
            .iter()
            .map(|&(bound, w)| (format!("occ<={bound}: width={w}"), w))
            .chain(std::iter::once((
                format!("fallback: width={}", self.fallback),
                self.fallback,
            )));
        for (action, w) in rows {
            let mut candidate = DecisionCandidate::new(action, if w == width { 1.0 } else { 0.0 });
            if let Some(t) = predict(w) {
                candidate = candidate.predicting(t);
            }
            trace = trace.candidate(candidate);
        }
        if let Some(t) = predict(width) {
            trace = trace.predicting(t);
        }
        self.last_decision = Some(trace);

        if !changed {
            return None;
        }
        Some(nest::config_for_width(shape, &nest, res.threads, width))
    }

    fn explain(&self) -> Option<DecisionTrace> {
        self.last_decision.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dope_core::{ShapeNode, TaskKind};

    #[test]
    fn table_lookup_uses_first_matching_bound() {
        let oracle = Oracle::from_table(vec![(1.0, 8), (5.0, 4), (10.0, 2)], 1);
        assert_eq!(oracle.width_for_occupancy(0.5), 8);
        assert_eq!(oracle.width_for_occupancy(1.0), 8);
        assert_eq!(oracle.width_for_occupancy(3.0), 4);
        assert_eq!(oracle.width_for_occupancy(7.0), 2);
        assert_eq!(oracle.width_for_occupancy(11.0), 1);
    }

    #[test]
    #[should_panic(expected = "strictly ascending")]
    fn unsorted_table_panics() {
        let _ = Oracle::from_table(vec![(5.0, 4), (1.0, 8)], 1);
    }

    #[test]
    fn reconfigures_with_occupancy() {
        let shape = ProgramShape::new(vec![ShapeNode {
            name: "t".into(),
            kind: TaskKind::Par,
            max_extent: None,
            alternatives: vec![vec![ShapeNode::leaf("c", TaskKind::Par)]],
        }]);
        let res = Resources::threads(24);
        let mut oracle = Oracle::from_table(vec![(2.0, 8)], 1);
        let current = oracle.initial(&shape, &res).unwrap();
        let mut snap = MonitorSnapshot::at(0.0);
        snap.queue.occupancy = 10.0;
        let new = oracle.reconfigure(&snap, &current, &shape, &res).unwrap();
        let nest = nest::find_two_level(&shape).unwrap();
        assert_eq!(nest::width_of(&new, &nest), 1);
    }
}
