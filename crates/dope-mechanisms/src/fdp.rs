//! Feedback-Directed Pipelining (Suleman et al., PACT 2010), as a DoPE
//! mechanism.

use crate::pipeline_util::{self, StageView};
use dope_core::{
    Config, DecisionCandidate, DecisionTrace, Mechanism, MonitorSnapshot, ProgramShape, Rationale,
    Resources,
};

/// Phase of the hill climber.
#[derive(Debug, Clone, PartialEq)]
enum Phase {
    /// Measure a baseline with the current assignment.
    Measure,
    /// A move was just applied; let the pipeline refill for one control
    /// period before judging it.
    Settle { saved: Vec<u32>, baseline: f64 },
    /// A move was applied and settled; compare against the baseline.
    Trial { saved: Vec<u32>, baseline: f64 },
    /// Converged; probe again after a cooldown.
    Converged { ticks_left: u32 },
}

/// *Feedback-Directed Pipelining*: a hill-climbing mechanism that uses
/// task execution times and measured pipeline throughput to search for a
/// better thread assignment — add a worker to the bottleneck stage (or
/// steal one from the most over-provisioned stage), keep the move if
/// throughput improved, revert otherwise.
///
/// Unlike TBF, FDP has "a global view of resource allocation" but no
/// explicit fusion; the paper implements it as one of DoPE's throughput
/// mechanisms (§7.2, \[29\]).
///
/// # Example
///
/// ```
/// use dope_mechanisms::Fdp;
///
/// let fdp = Fdp::default();
/// assert_eq!(dope_core::Mechanism::name(&fdp), "FDP");
/// ```
#[derive(Debug, Clone)]
pub struct Fdp {
    improvement_eps: f64,
    cooldown_ticks: u32,
    failed_moves: u32,
    max_failed_moves: u32,
    phase: Phase,
    last_decision: Option<DecisionTrace>,
}

impl Fdp {
    /// An FDP climber that accepts moves improving throughput by at least
    /// `improvement_eps` (fractional) and, after `max_failed_moves`
    /// consecutive rejected moves, sleeps for `cooldown_ticks` control
    /// periods before probing again.
    #[must_use]
    pub fn new(improvement_eps: f64, max_failed_moves: u32, cooldown_ticks: u32) -> Self {
        assert!(improvement_eps >= 0.0, "epsilon must be non-negative");
        Fdp {
            improvement_eps,
            cooldown_ticks,
            failed_moves: 0,
            max_failed_moves: max_failed_moves.max(1),
            phase: Phase::Measure,
            last_decision: None,
        }
    }

    fn sink_throughput(views: &[StageView]) -> f64 {
        views.last().map_or(0.0, |v| v.throughput)
    }

    /// Index of the stage limiting throughput: lowest potential
    /// (`extent / mean_exec`) among parallel stages.
    fn bottleneck(views: &[StageView]) -> Option<usize> {
        views
            .iter()
            .enumerate()
            .filter(|(_, v)| v.parallel && v.mean_exec > 0.0)
            .min_by(|a, b| {
                let pa = f64::from(a.1.extent) / a.1.mean_exec;
                let pb = f64::from(b.1.extent) / b.1.mean_exec;
                pa.partial_cmp(&pb).unwrap_or(std::cmp::Ordering::Equal)
            })
            .map(|(i, _)| i)
    }

    /// Index of the most over-provisioned parallel stage with workers to
    /// spare.
    fn donor(views: &[StageView], exclude: usize) -> Option<usize> {
        views
            .iter()
            .enumerate()
            .filter(|&(i, v)| i != exclude && v.parallel && v.extent > 1 && v.mean_exec > 0.0)
            .max_by(|a, b| {
                let pa = f64::from(a.1.extent) / a.1.mean_exec;
                let pb = f64::from(b.1.extent) / b.1.mean_exec;
                pa.partial_cmp(&pb).unwrap_or(std::cmp::Ordering::Equal)
            })
            .map(|(i, _)| i)
    }

    fn propose_move(views: &[StageView], budget: u32) -> Option<Vec<u32>> {
        let bottleneck = Self::bottleneck(views)?;
        let mut extents: Vec<u32> = views.iter().map(|v| v.extent).collect();
        let cap = views[bottleneck].max_extent.unwrap_or(u32::MAX);
        if extents[bottleneck] >= cap {
            return None;
        }
        let total: u32 = extents.iter().sum();
        if total < budget {
            extents[bottleneck] += 1;
            return Some(extents);
        }
        let donor = Self::donor(views, bottleneck)?;
        extents[donor] -= 1;
        extents[bottleneck] += 1;
        Some(extents)
    }
}

impl Default for Fdp {
    /// Accept 2% improvements, sleep for 10 ticks after 3 failed moves.
    fn default() -> Self {
        Fdp::new(0.02, 3, 10)
    }
}

impl Mechanism for Fdp {
    fn name(&self) -> &'static str {
        "FDP"
    }

    fn initial(&mut self, shape: &ProgramShape, res: &Resources) -> Option<Config> {
        // Start from the static even split and climb from there.
        Some(Config::even(shape, res.threads))
    }

    fn reconfigure(
        &mut self,
        snap: &MonitorSnapshot,
        current: &Config,
        shape: &ProgramShape,
        res: &Resources,
    ) -> Option<Config> {
        let (alt, views) = pipeline_util::stages(snap, current, shape)?;
        if views.iter().any(|v| v.parallel && v.mean_exec <= 0.0) {
            return None; // not all stages observed yet
        }
        let throughput = Self::sink_throughput(&views);

        // Audit trail: every arm of the state machine records what it saw
        // and why it moved (or held); the executive scores the prediction
        // one epoch later. `failed_moves` is the count going *into* this
        // decision.
        let failed_moves = self.failed_moves;
        let improvement_eps = self.improvement_eps;
        let base_trace = move |rationale, chosen: String| {
            DecisionTrace::new(rationale, chosen)
                .observing("sink_throughput", throughput)
                .observing("failed_moves", f64::from(failed_moves))
                .observing("improvement_eps", improvement_eps)
        };

        match std::mem::replace(&mut self.phase, Phase::Measure) {
            Phase::Measure => {
                let Some(extents) = Self::propose_move(&views, res.threads) else {
                    self.last_decision = Some(
                        base_trace(Rationale::Converged, "hold".to_string())
                            .candidate(DecisionCandidate::new("probe", 0.0))
                            .candidate(DecisionCandidate::new("hold", 1.0)),
                    );
                    self.phase = Phase::Converged {
                        ticks_left: self.cooldown_ticks,
                    };
                    return None;
                };
                let saved: Vec<u32> = views.iter().map(|v| v.extent).collect();
                let chosen = pipeline_util::extents_label(&extents);
                let mut probe = DecisionCandidate::new(chosen.clone(), 1.0);
                if let Some(rate) = pipeline_util::bottleneck_rate(&views, &extents) {
                    probe = probe.predicting(rate);
                }
                let mut trace = base_trace(Rationale::HillClimbProbe, chosen)
                    .candidate(probe)
                    .candidate(
                        DecisionCandidate::new(pipeline_util::extents_label(&saved), 0.0)
                            .predicting(throughput),
                    );
                if let Some(rate) = pipeline_util::bottleneck_rate(&views, &extents) {
                    trace = trace.predicting(rate);
                }
                self.last_decision = Some(trace);
                self.phase = Phase::Settle {
                    saved,
                    baseline: throughput,
                };
                pipeline_util::config_from_extents(current, alt, shape, &extents)
            }
            Phase::Settle { saved, baseline } => {
                // The window that just ended straddles the reconfiguration;
                // judge the move on the next full window.
                self.last_decision = Some(
                    base_trace(Rationale::SettleWait, "hold".to_string())
                        .observing("baseline_throughput", baseline),
                );
                self.phase = Phase::Trial { saved, baseline };
                None
            }
            Phase::Trial { saved, baseline } => {
                let bar = baseline * (1.0 + self.improvement_eps);
                let keep = DecisionCandidate::new("keep", throughput).predicting(throughput);
                let revert = DecisionCandidate::new(
                    format!("revert: {}", pipeline_util::extents_label(&saved)),
                    bar,
                )
                .predicting(baseline);
                if throughput > bar {
                    // Keep the move; continue climbing from here.
                    self.failed_moves = 0;
                    self.last_decision = Some(
                        base_trace(Rationale::KeepBetterMove, "keep".to_string())
                            .observing("baseline_throughput", baseline)
                            .candidate(keep)
                            .candidate(revert)
                            .predicting(throughput),
                    );
                    self.phase = Phase::Measure;
                    None
                } else {
                    self.failed_moves += 1;
                    self.last_decision = Some(
                        base_trace(
                            Rationale::RevertWorseMove,
                            format!("revert: {}", pipeline_util::extents_label(&saved)),
                        )
                        .observing("baseline_throughput", baseline)
                        .candidate(keep)
                        .candidate(revert)
                        .predicting(baseline),
                    );
                    if self.failed_moves >= self.max_failed_moves {
                        self.failed_moves = 0;
                        self.phase = Phase::Converged {
                            ticks_left: self.cooldown_ticks,
                        };
                    } else {
                        self.phase = Phase::Measure;
                    }
                    pipeline_util::config_from_extents(current, alt, shape, &saved)
                }
            }
            Phase::Converged { ticks_left } => {
                self.last_decision = Some(
                    base_trace(Rationale::Converged, "hold".to_string())
                        .observing("cooldown_ticks_left", f64::from(ticks_left)),
                );
                if ticks_left > 0 {
                    self.phase = Phase::Converged {
                        ticks_left: ticks_left - 1,
                    };
                } else {
                    self.phase = Phase::Measure;
                }
                None
            }
        }
    }

    fn explain(&self) -> Option<DecisionTrace> {
        self.last_decision.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dope_core::{ShapeNode, TaskConfig, TaskKind, TaskPath, TaskStats};

    fn shape() -> ProgramShape {
        ProgramShape::new(vec![ShapeNode {
            name: "pipe".into(),
            kind: TaskKind::Par,
            max_extent: Some(1),
            alternatives: vec![vec![
                ShapeNode::leaf("in", TaskKind::Seq),
                ShapeNode::leaf("a", TaskKind::Par),
                ShapeNode::leaf("b", TaskKind::Par),
                ShapeNode::leaf("out", TaskKind::Seq),
            ]],
        }])
    }

    fn config(extents: &[u32]) -> Config {
        Config::new(vec![TaskConfig::nest(
            "pipe",
            1,
            0,
            extents
                .iter()
                .zip(["in", "a", "b", "out"])
                .map(|(&e, n)| TaskConfig::leaf(n, e))
                .collect(),
        )])
    }

    fn snap(execs: &[f64], sink_throughput: f64) -> MonitorSnapshot {
        let mut s = MonitorSnapshot::at(1.0);
        let n = execs.len();
        for (i, &e) in execs.iter().enumerate() {
            s.tasks.insert(
                TaskPath::root_child(0).child(i as u16),
                TaskStats {
                    invocations: 50,
                    mean_exec_secs: e,
                    throughput: if i == n - 1 { sink_throughput } else { 100.0 },
                    load: 0.0,
                    utilization: 0.8,
                    ..TaskStats::default()
                },
            );
        }
        s
    }

    #[test]
    fn starts_from_even_split() {
        let mut fdp = Fdp::default();
        let init = fdp.initial(&shape(), &Resources::threads(24)).unwrap();
        assert_eq!(init.total_threads(), 24);
        init.validate(&shape(), 24).unwrap();
    }

    #[test]
    fn first_move_grows_bottleneck() {
        let shape = shape();
        let mut fdp = Fdp::default();
        // Stage b is slower: bottleneck.
        let new = fdp
            .reconfigure(
                &snap(&[0.001, 0.01, 0.03, 0.001], 50.0),
                &config(&[1, 2, 2, 1]),
                &shape,
                &Resources::threads(24),
            )
            .unwrap();
        assert_eq!(new.extent_of(&"0.2".parse().unwrap()), Some(3));
    }

    #[test]
    fn keeps_improving_move_and_reverts_bad_one() {
        let shape = shape();
        let res = Resources::threads(24);
        let mut fdp = Fdp::new(0.02, 3, 10);
        let c0 = config(&[1, 2, 2, 1]);
        // Move proposed.
        let c1 = fdp
            .reconfigure(&snap(&[0.001, 0.01, 0.03, 0.001], 50.0), &c0, &shape, &res)
            .unwrap();
        // Settling tick: no proposal.
        assert!(fdp
            .reconfigure(&snap(&[0.001, 0.01, 0.03, 0.001], 55.0), &c1, &shape, &res)
            .is_none());
        // Throughput improved: keep (no proposal).
        assert!(fdp
            .reconfigure(&snap(&[0.001, 0.01, 0.03, 0.001], 60.0), &c1, &shape, &res)
            .is_none());
        // Next move proposed, then its settling tick.
        let c2 = fdp
            .reconfigure(&snap(&[0.001, 0.01, 0.03, 0.001], 60.0), &c1, &shape, &res)
            .unwrap();
        assert!(fdp
            .reconfigure(&snap(&[0.001, 0.01, 0.03, 0.001], 41.0), &c2, &shape, &res)
            .is_none());
        // Throughput dropped: revert to c1's extents.
        let reverted = fdp
            .reconfigure(&snap(&[0.001, 0.01, 0.03, 0.001], 40.0), &c2, &shape, &res)
            .unwrap();
        assert_eq!(reverted, c1);
    }

    #[test]
    fn steals_from_overprovisioned_stage_at_budget() {
        let shape = shape();
        let mut fdp = Fdp::default();
        // Budget fully used: 1 + 11 + 11 + 1 = 24. Stage b slower.
        let new = fdp
            .reconfigure(
                &snap(&[0.001, 0.005, 0.03, 0.001], 50.0),
                &config(&[1, 11, 11, 1]),
                &shape,
                &Resources::threads(24),
            )
            .unwrap();
        assert_eq!(new.extent_of(&"0.1".parse().unwrap()), Some(10));
        assert_eq!(new.extent_of(&"0.2".parse().unwrap()), Some(12));
        assert_eq!(new.total_threads(), 24);
    }

    #[test]
    fn converges_after_repeated_failures() {
        let shape = shape();
        let res = Resources::threads(24);
        let mut fdp = Fdp::new(0.02, 2, 5);
        let mut current = config(&[1, 2, 2, 1]);
        let flat = |c: f64| snap(&[0.001, 0.01, 0.01, 0.001], c);
        let mut proposals = 0;
        for _ in 0..30 {
            if let Some(c) = fdp.reconfigure(&flat(50.0), &current, &shape, &res) {
                current = c;
                proposals += 1;
            }
        }
        // The climber must not thrash forever on a flat landscape: far
        // fewer proposals than calls.
        assert!(proposals < 15, "proposals = {proposals}");
    }
}
