//! The Throughput Power Controller (paper §7.3).

use crate::pipeline_util::{self, StageView};
use dope_core::{
    Config, DecisionCandidate, DecisionTrace, Mechanism, MonitorSnapshot, ProgramShape, Rationale,
    Resources,
};

/// Controller phase.
#[derive(Debug, Clone, PartialEq)]
enum Phase {
    /// Grow the bottleneck's DoP until the power budget is used.
    Ramp,
    /// At the power boundary: explore same-size configurations for the
    /// best throughput.
    Explore { saved: Vec<u32>, baseline: f64 },
}

/// *Throughput Power Controller*: maximizes throughput while keeping
/// system power at or below an administrator-specified target.
///
/// Per the paper: "The controller initializes each task with a DoP extent
/// equal to 1. It then identifies the task with the least throughput and
/// increments the DoP extent of the task if throughput improves and the
/// power budget is not exceeded. If the power budget is exceeded, the
/// controller tries alternative parallelism configurations with the same
/// DoP extent as the configuration prior to power overshoot," consulting
/// recorded history for the best-throughput configuration under budget.
///
/// The controller's feedback is rate-limited by the power meter (the
/// paper's PDU samples 13x/minute), so it holds its state between stale
/// samples.
///
/// # Example
///
/// ```
/// use dope_mechanisms::Tpc;
///
/// let tpc = Tpc::default();
/// assert_eq!(dope_core::Mechanism::name(&tpc), "TPC");
/// ```
#[derive(Debug, Clone)]
pub struct Tpc {
    margin_watts: f64,
    improvement_eps: f64,
    phase: Phase,
    /// Total extent cap learned from power overshoots.
    extent_cap: Option<u32>,
    /// Best (throughput, extents) seen under the power budget.
    best: Option<(f64, Vec<u32>)>,
    last_power: Option<f64>,
    last_decision: Option<DecisionTrace>,
}

impl Tpc {
    /// A TPC with safety margin `margin_watts` under the budget and
    /// improvement threshold `improvement_eps` for exploration moves.
    #[must_use]
    pub fn new(margin_watts: f64, improvement_eps: f64) -> Self {
        assert!(margin_watts >= 0.0, "margin must be non-negative");
        Tpc {
            margin_watts,
            improvement_eps,
            phase: Phase::Ramp,
            extent_cap: None,
            best: None,
            last_power: None,
            last_decision: None,
        }
    }

    fn sink_throughput(views: &[StageView]) -> f64 {
        views.last().map_or(0.0, |v| v.throughput)
    }

    fn extents(views: &[StageView]) -> Vec<u32> {
        views.iter().map(|v| v.extent).collect()
    }
}

impl Default for Tpc {
    /// 5 W margin, 2% improvement threshold.
    fn default() -> Self {
        Tpc::new(5.0, 0.02)
    }
}

impl Mechanism for Tpc {
    fn name(&self) -> &'static str {
        "TPC"
    }

    fn initial(&mut self, shape: &ProgramShape, _res: &Resources) -> Option<Config> {
        Some(Config::single_threaded(shape))
    }

    fn reconfigure(
        &mut self,
        snap: &MonitorSnapshot,
        current: &Config,
        shape: &ProgramShape,
        res: &Resources,
    ) -> Option<Config> {
        let budget_watts = res.power_budget_watts?;
        let power = snap.power_watts?;
        // A stale meter reading carries no new information: hold state.
        if self.last_power == Some(power) {
            self.last_decision = Some(
                DecisionTrace::new(Rationale::PowerSignalStale, "hold".to_string())
                    .observing("power_watts", power)
                    .observing("budget_watts", budget_watts),
            );
            return None;
        }
        self.last_power = Some(power);

        let (alt, views) = pipeline_util::stages(snap, current, shape)?;
        if views.iter().any(|v| v.parallel && v.mean_exec <= 0.0) {
            return None;
        }
        let throughput = Self::sink_throughput(&views);
        let total: u32 = views.iter().map(|v| v.extent).sum();
        let over = power > budget_watts;
        let headroom = power < budget_watts - self.margin_watts;

        if !over {
            match &self.best {
                Some((t, _)) if *t >= throughput => {}
                _ => self.best = Some((throughput, Self::extents(&views))),
            }
        }

        // Audit trail: every branch below records power, budget, and the
        // throughput it was weighing.
        let base_trace = move |rationale, chosen: String| {
            DecisionTrace::new(rationale, chosen)
                .observing("power_watts", power)
                .observing("budget_watts", budget_watts)
                .observing("sink_throughput", throughput)
                .observing("total_extent", f64::from(total))
        };
        let predicted = |extents: &[u32]| pipeline_util::bottleneck_rate(&views, extents);

        match std::mem::replace(&mut self.phase, Phase::Ramp) {
            Phase::Ramp => {
                if over {
                    // Power overshoot: cap the total extent below the
                    // current configuration and fall back to the best
                    // recorded configuration under budget.
                    let cap = total.saturating_sub(1).max(views.len() as u32);
                    self.extent_cap = Some(cap);
                    let fallback = self
                        .best
                        .as_ref()
                        .map(|(_, e)| e.clone())
                        .unwrap_or_else(|| vec![1; views.len()]);
                    let chosen = format!("fallback: {}", pipeline_util::extents_label(&fallback));
                    let mut trace = base_trace(Rationale::PowerCapBinding, chosen.clone())
                        .observing("extent_cap", f64::from(cap))
                        .candidate(DecisionCandidate::new("stay over budget", 0.0))
                        .candidate(DecisionCandidate::new(chosen, 1.0));
                    if let Some(rate) = predicted(&fallback) {
                        trace = trace.predicting(rate);
                    }
                    self.last_decision = Some(trace);
                    self.phase = Phase::Explore {
                        saved: fallback.clone(),
                        baseline: 0.0,
                    };
                    return pipeline_util::config_from_extents(current, alt, shape, &fallback);
                }
                let at_cap = self.extent_cap.is_some_and(|cap| total >= cap);
                if headroom && !at_cap && total < res.threads {
                    // Grow the slowest task's DoP.
                    if let Some(extents) = grow_bottleneck(&views) {
                        let chosen = pipeline_util::extents_label(&extents);
                        let mut trace = base_trace(Rationale::PowerHeadroomGrow, chosen.clone())
                            .observing("headroom_watts", budget_watts - self.margin_watts - power)
                            .candidate(DecisionCandidate::new(chosen, 1.0))
                            .candidate(DecisionCandidate::new("hold", 0.0).predicting(throughput));
                        if let Some(rate) = predicted(&extents) {
                            trace = trace.predicting(rate);
                        }
                        self.last_decision = Some(trace);
                        self.phase = Phase::Ramp;
                        return pipeline_util::config_from_extents(current, alt, shape, &extents);
                    }
                }
                // At the boundary: explore same-size moves.
                if let Some(extents) = swap_move(&views) {
                    let chosen = format!("swap: {}", pipeline_util::extents_label(&extents));
                    let mut trace = base_trace(Rationale::HillClimbProbe, chosen.clone())
                        .candidate(DecisionCandidate::new(chosen, 1.0))
                        .candidate(DecisionCandidate::new("hold", 0.0).predicting(throughput));
                    if let Some(rate) = predicted(&extents) {
                        trace = trace.predicting(rate);
                    }
                    self.last_decision = Some(trace);
                    self.phase = Phase::Explore {
                        saved: Self::extents(&views),
                        baseline: throughput,
                    };
                    return pipeline_util::config_from_extents(current, alt, shape, &extents);
                }
                self.last_decision =
                    Some(base_trace(Rationale::Hold, "hold".to_string()).predicting(throughput));
                self.phase = Phase::Ramp;
                None
            }
            Phase::Explore { saved, baseline } => {
                if over {
                    let cap = total.saturating_sub(1).max(views.len() as u32);
                    self.extent_cap = Some(cap);
                    let chosen = format!("revert: {}", pipeline_util::extents_label(&saved));
                    let mut trace = base_trace(Rationale::PowerCapBinding, chosen)
                        .observing("extent_cap", f64::from(cap));
                    if let Some(rate) = predicted(&saved) {
                        trace = trace.predicting(rate);
                    }
                    self.last_decision = Some(trace);
                    self.phase = Phase::Ramp;
                    return pipeline_util::config_from_extents(current, alt, shape, &saved);
                }
                let keep = DecisionCandidate::new("keep", throughput).predicting(throughput);
                let revert = DecisionCandidate::new(
                    format!("revert: {}", pipeline_util::extents_label(&saved)),
                    baseline * (1.0 + self.improvement_eps),
                )
                .predicting(baseline);
                if throughput > baseline * (1.0 + self.improvement_eps) {
                    self.last_decision = Some(
                        base_trace(Rationale::KeepBetterMove, "keep".to_string())
                            .observing("baseline_throughput", baseline)
                            .candidate(keep)
                            .candidate(revert)
                            .predicting(throughput),
                    );
                    self.phase = Phase::Ramp;
                    None
                } else {
                    self.last_decision = Some(
                        base_trace(
                            Rationale::RevertWorseMove,
                            format!("revert: {}", pipeline_util::extents_label(&saved)),
                        )
                        .observing("baseline_throughput", baseline)
                        .candidate(keep)
                        .candidate(revert)
                        .predicting(baseline),
                    );
                    self.phase = Phase::Ramp;
                    pipeline_util::config_from_extents(current, alt, shape, &saved)
                }
            }
        }
    }

    fn explain(&self) -> Option<DecisionTrace> {
        self.last_decision.clone()
    }
}

/// One more worker for the stage with the least potential throughput.
fn grow_bottleneck(views: &[StageView]) -> Option<Vec<u32>> {
    let i = views
        .iter()
        .enumerate()
        .filter(|(_, v)| {
            v.parallel && v.mean_exec > 0.0 && v.max_extent.is_none_or(|m| v.extent < m)
        })
        .min_by(|a, b| {
            let pa = f64::from(a.1.extent) / a.1.mean_exec;
            let pb = f64::from(b.1.extent) / b.1.mean_exec;
            pa.partial_cmp(&pb).unwrap_or(std::cmp::Ordering::Equal)
        })
        .map(|(i, _)| i)?;
    let mut extents: Vec<u32> = views.iter().map(|v| v.extent).collect();
    extents[i] += 1;
    Some(extents)
}

/// Move one worker from the most over-provisioned stage to the
/// bottleneck, keeping the total extent constant.
fn swap_move(views: &[StageView]) -> Option<Vec<u32>> {
    let bottleneck = views
        .iter()
        .enumerate()
        .filter(|(_, v)| v.parallel && v.mean_exec > 0.0)
        .min_by(|a, b| {
            let pa = f64::from(a.1.extent) / a.1.mean_exec;
            let pb = f64::from(b.1.extent) / b.1.mean_exec;
            pa.partial_cmp(&pb).unwrap_or(std::cmp::Ordering::Equal)
        })
        .map(|(i, _)| i)?;
    let donor = views
        .iter()
        .enumerate()
        .filter(|&(i, v)| i != bottleneck && v.parallel && v.extent > 1 && v.mean_exec > 0.0)
        .max_by(|a, b| {
            let pa = f64::from(a.1.extent) / a.1.mean_exec;
            let pb = f64::from(b.1.extent) / b.1.mean_exec;
            pa.partial_cmp(&pb).unwrap_or(std::cmp::Ordering::Equal)
        })
        .map(|(i, _)| i)?;
    if views[bottleneck]
        .max_extent
        .is_some_and(|m| views[bottleneck].extent >= m)
    {
        return None;
    }
    let mut extents: Vec<u32> = views.iter().map(|v| v.extent).collect();
    extents[donor] -= 1;
    extents[bottleneck] += 1;
    Some(extents)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dope_core::{ShapeNode, TaskConfig, TaskKind, TaskPath, TaskStats};

    fn shape() -> ProgramShape {
        ProgramShape::new(vec![ShapeNode {
            name: "ferret".into(),
            kind: TaskKind::Par,
            max_extent: Some(1),
            alternatives: vec![vec![
                ShapeNode::leaf("load", TaskKind::Seq),
                ShapeNode::leaf("seg", TaskKind::Par),
                ShapeNode::leaf("rank", TaskKind::Par),
                ShapeNode::leaf("out", TaskKind::Seq),
            ]],
        }])
    }

    fn config(extents: &[u32]) -> Config {
        Config::new(vec![TaskConfig::nest(
            "ferret",
            1,
            0,
            extents
                .iter()
                .zip(["load", "seg", "rank", "out"])
                .map(|(&e, n)| TaskConfig::leaf(n, e))
                .collect(),
        )])
    }

    fn snap(power: f64, sink: f64, extents_hint: &[u32]) -> MonitorSnapshot {
        let mut s = MonitorSnapshot::at(1.0);
        s.power_watts = Some(power);
        let execs = [0.001, 0.01, 0.02, 0.001];
        for (i, &exec) in execs.iter().enumerate() {
            s.tasks.insert(
                TaskPath::root_child(0).child(i as u16),
                TaskStats {
                    invocations: 50,
                    mean_exec_secs: exec,
                    throughput: if i == 3 { sink } else { 100.0 },
                    load: 0.0,
                    utilization: 0.8,
                    ..TaskStats::default()
                },
            );
        }
        let _ = extents_hint;
        s
    }

    fn res() -> Resources {
        Resources::threads(24).with_power_budget(630.0)
    }

    #[test]
    fn requires_power_goal_and_sample() {
        let shape = shape();
        let mut tpc = Tpc::default();
        let mut no_power_snap = snap(600.0, 50.0, &[1, 1, 1, 1]);
        no_power_snap.power_watts = None;
        assert!(tpc
            .reconfigure(&no_power_snap, &config(&[1, 1, 1, 1]), &shape, &res())
            .is_none());
        let snap2 = snap(600.0, 50.0, &[1, 1, 1, 1]);
        assert!(tpc
            .reconfigure(
                &snap2,
                &config(&[1, 1, 1, 1]),
                &shape,
                &Resources::threads(24)
            )
            .is_none());
    }

    #[test]
    fn ramps_while_under_budget() {
        let shape = shape();
        let mut tpc = Tpc::default();
        let new = tpc
            .reconfigure(
                &snap(550.0, 50.0, &[1, 1, 1, 1]),
                &config(&[1, 1, 1, 1]),
                &shape,
                &res(),
            )
            .unwrap();
        assert!(new.total_threads() > 4);
        // The slowest stage (rank) got the worker.
        assert_eq!(new.extent_of(&"0.2".parse().unwrap()), Some(2));
    }

    #[test]
    fn backs_off_on_overshoot() {
        let shape = shape();
        let mut tpc = Tpc::default();
        // Record a good configuration under budget first.
        let c = config(&[1, 4, 8, 1]);
        let grown = tpc
            .reconfigure(&snap(600.0, 80.0, &[1, 4, 8, 1]), &c, &shape, &res())
            .unwrap();
        // Now power overshoots: fall back and cap.
        let fallback = tpc
            .reconfigure(&snap(660.0, 85.0, &[1, 4, 9, 1]), &grown, &shape, &res())
            .unwrap();
        assert!(fallback.total_threads() <= grown.total_threads());
        assert!(tpc.extent_cap.is_some());
    }

    #[test]
    fn stale_power_sample_holds_state() {
        let shape = shape();
        let mut tpc = Tpc::default();
        let c = config(&[1, 1, 1, 1]);
        let s = snap(550.0, 50.0, &[1, 1, 1, 1]);
        let _ = tpc.reconfigure(&s, &c, &shape, &res());
        // Same power reading again: the meter has not produced a fresh
        // sample, so the controller holds.
        assert!(tpc.reconfigure(&s, &c, &shape, &res()).is_none());
    }

    #[test]
    fn respects_thread_budget_during_ramp() {
        let shape = shape();
        let mut tpc = Tpc::default();
        let c = config(&[1, 11, 11, 1]);
        // Under power budget but out of threads: only swap moves allowed.
        let proposal = tpc.reconfigure(&snap(550.0, 50.0, &[1, 11, 11, 1]), &c, &shape, &res());
        if let Some(p) = proposal {
            assert!(p.total_threads() <= 24);
        }
    }
}
