//! WQ-Linear with hysteresis — the variant the paper sketches in §7.1:
//! "A variant of WQ-Linear could be a mechanism that incorporates the
//! hysteresis component of WQT-H into WQ-Linear."

use crate::wq_linear::WqLinear;
use dope_core::nest::{self, TwoLevelNest};
use dope_core::{
    realized_throughput, Config, DecisionCandidate, DecisionTrace, Mechanism, MonitorSnapshot,
    ProgramShape, Rationale, Resources,
};

/// WQ-Linear whose width changes are gated by hysteresis: Equation 2's
/// target must persist for `persistence` consecutive observations before
/// the configuration actually moves, suppressing reconfiguration churn on
/// noisy queues while keeping the continuous DoP range.
///
/// # Example
///
/// ```
/// use dope_mechanisms::WqLinearH;
///
/// let mech = WqLinearH::new(1, 8, 16.0, 3);
/// assert_eq!(dope_core::Mechanism::name(&mech), "WQ-Linear-H");
/// ```
#[derive(Debug, Clone)]
pub struct WqLinearH {
    inner: WqLinear,
    persistence: u64,
    pending: Option<(u32, u64)>,
    nest: Option<TwoLevelNest>,
    last_decision: Option<DecisionTrace>,
}

impl WqLinearH {
    /// A hysteretic WQ-Linear over `[m_min, m_max]` with slope
    /// `(m_max - m_min) / q_max`, requiring a target width to persist for
    /// `persistence` observations.
    ///
    /// # Panics
    ///
    /// Panics on the same invalid parameters as [`WqLinear::new`].
    #[must_use]
    pub fn new(m_min: u32, m_max: u32, q_max: f64, persistence: u64) -> Self {
        WqLinearH {
            inner: WqLinear::new(m_min, m_max, q_max),
            persistence: persistence.max(1),
            pending: None,
            nest: None,
            last_decision: None,
        }
    }

    /// The width Equation 2 targets at `occupancy` (before hysteresis).
    #[must_use]
    pub fn width_for_occupancy(&self, occupancy: f64) -> u32 {
        self.inner.width_for_occupancy(occupancy)
    }
}

impl Default for WqLinearH {
    /// WQ-Linear defaults with a persistence of 3 observations.
    fn default() -> Self {
        WqLinearH::new(1, 8, 16.0, 3)
    }
}

impl Mechanism for WqLinearH {
    fn name(&self) -> &'static str {
        "WQ-Linear-H"
    }

    fn initial(&mut self, shape: &ProgramShape, res: &Resources) -> Option<Config> {
        self.nest = nest::find_two_level(shape);
        self.inner.initial(shape, res)
    }

    fn reconfigure(
        &mut self,
        snap: &MonitorSnapshot,
        current: &Config,
        shape: &ProgramShape,
        res: &Resources,
    ) -> Option<Config> {
        if self.nest.is_none() {
            self.nest = nest::find_two_level(shape);
        }
        let nest = self.nest.clone()?;
        let occ = snap.queue.occupancy;
        let target = self.inner.width_for_occupancy(occ);
        let current_width = nest::width_of(current, &nest);
        let base = realized_throughput(snap).filter(|_| current_width > 0);
        let predict = |w: u32| base.map(|t| t * f64::from(w) / f64::from(current_width));
        let persistence = self.persistence;
        // Two candidates every consult: move to Equation 2's target now
        // (scored by how far the persistence streak has run) vs hold at
        // the current width until the target proves stable.
        let observe = |trace: DecisionTrace, streak: u64| {
            let streak_ratio = streak as f64 / persistence as f64;
            let mut moving = DecisionCandidate::new(format!("width={target}"), streak_ratio);
            if let Some(t) = predict(target) {
                moving = moving.predicting(t);
            }
            let mut holding = DecisionCandidate::new("hold", 1.0 - streak_ratio);
            if let Some(t) = predict(current_width) {
                holding = holding.predicting(t);
            }
            trace
                .observing("queue_occupancy", occ)
                .observing("current_width", f64::from(current_width))
                .observing("target_width", f64::from(target))
                .observing("persistence_streak", streak as f64)
                .candidate(moving)
                .candidate(holding)
        };

        if target == current_width {
            self.pending = None;
            let mut trace = observe(DecisionTrace::new(Rationale::Hold, "hold"), 0);
            if let Some(t) = predict(current_width) {
                trace = trace.predicting(t);
            }
            self.last_decision = Some(trace);
            return None;
        }
        let streak = match self.pending {
            Some((w, streak)) if w == target => streak + 1,
            _ => 1,
        };
        if streak < self.persistence {
            self.pending = Some((target, streak));
            let mut trace = observe(
                DecisionTrace::new(Rationale::HysteresisPending, "hold"),
                streak,
            );
            if let Some(t) = predict(current_width) {
                trace = trace.predicting(t);
            }
            self.last_decision = Some(trace);
            return None;
        }
        self.pending = None;
        let mut trace = observe(
            DecisionTrace::new(Rationale::OccupancyLinear, format!("width={target}")),
            streak,
        );
        if let Some(t) = predict(target) {
            trace = trace.predicting(t);
        }
        self.last_decision = Some(trace);
        Some(nest::config_for_width(shape, &nest, res.threads, target))
    }

    fn explain(&self) -> Option<DecisionTrace> {
        self.last_decision.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dope_core::{ShapeNode, TaskKind};

    fn shape() -> ProgramShape {
        ProgramShape::new(vec![ShapeNode {
            name: "txn".into(),
            kind: TaskKind::Par,
            max_extent: None,
            alternatives: vec![
                vec![ShapeNode::leaf("work", TaskKind::Par)],
                vec![ShapeNode::leaf("whole", TaskKind::Seq)],
            ],
        }])
    }

    fn snap(occ: f64) -> MonitorSnapshot {
        let mut s = MonitorSnapshot::at(1.0);
        s.queue.occupancy = occ;
        s
    }

    #[test]
    fn requires_persistent_target_before_moving() {
        let shape = shape();
        let res = Resources::threads(24);
        let mut mech = WqLinearH::new(1, 8, 16.0, 3);
        let current = mech.initial(&shape, &res).unwrap();
        // Occupancy 16 targets width 1; needs 3 consecutive observations.
        assert!(mech
            .reconfigure(&snap(16.0), &current, &shape, &res)
            .is_none());
        assert!(mech
            .reconfigure(&snap(16.0), &current, &shape, &res)
            .is_none());
        let moved = mech
            .reconfigure(&snap(16.0), &current, &shape, &res)
            .expect("third observation fires");
        let nest = nest::find_two_level(&shape).unwrap();
        assert_eq!(nest::width_of(&moved, &nest), 1);
    }

    #[test]
    fn flapping_occupancy_never_fires() {
        let shape = shape();
        let res = Resources::threads(24);
        let mut mech = WqLinearH::new(1, 8, 16.0, 2);
        let current = mech.initial(&shape, &res).unwrap();
        for i in 0..20 {
            let occ = if i % 2 == 0 { 16.0 } else { 8.0 };
            assert!(
                mech.reconfigure(&snap(occ), &current, &shape, &res)
                    .is_none(),
                "flapped at step {i}"
            );
        }
    }

    #[test]
    fn persistence_one_matches_plain_wq_linear() {
        let shape = shape();
        let res = Resources::threads(24);
        let mut hyst = WqLinearH::new(1, 8, 16.0, 1);
        let mut plain = WqLinear::new(1, 8, 16.0);
        let current = hyst.initial(&shape, &res).unwrap();
        let _ = plain.initial(&shape, &res);
        let a = hyst.reconfigure(&snap(10.0), &current, &shape, &res);
        let b = plain.reconfigure(&snap(10.0), &current, &shape, &res);
        assert_eq!(a, b);
    }

    #[test]
    fn stable_target_resets_pending() {
        let shape = shape();
        let res = Resources::threads(24);
        let mut mech = WqLinearH::new(1, 8, 16.0, 2);
        let current = mech.initial(&shape, &res).unwrap();
        // One observation toward width 1, then back at the current width:
        // the pending streak must reset.
        assert!(mech
            .reconfigure(&snap(16.0), &current, &shape, &res)
            .is_none());
        assert!(mech
            .reconfigure(&snap(0.0), &current, &shape, &res)
            .is_none());
        assert!(mech
            .reconfigure(&snap(16.0), &current, &shape, &res)
            .is_none());
    }
}
