//! A shed-aware wrapper: break the shrink-under-shedding feedback loop.

use dope_core::{
    Config, DecisionTrace, Mechanism, MonitorSnapshot, ProgramShape, Rationale, Resources,
};

/// Wraps any inner mechanism and vetoes shrink proposals while the
/// admission gate is actively shedding.
///
/// An admission gate under the `Shed` policy bounds queue occupancy at
/// the high watermark, so an occupancy-driven mechanism looking at
/// `snapshot().queue` sees a short queue *precisely when the front door
/// is dropping traffic* — and concludes there is idle capacity to give
/// back. Shrinking then sheds even more. This wrapper reads the
/// admission counters the monitor surfaces in every snapshot: when the
/// gate shed offers since the previous consult, any inner proposal that
/// would lower the total thread count is vetoed and the hold is
/// explained with [`Rationale::AdmissionShedding`]. Growth and
/// rebalancing proposals pass through untouched — more capacity (or
/// better-placed capacity) is exactly what relieves the gate.
///
/// With no admission gate installed (all-zero
/// [`AdmissionStats`](dope_core::AdmissionStats)) the wrapper is fully
/// transparent.
///
/// # Example
///
/// ```
/// use dope_mechanisms::{ShedAware, Tbf};
///
/// let mech = ShedAware::new(Tbf::default());
/// assert_eq!(dope_core::Mechanism::name(&mech), "TBF");
/// ```
#[derive(Debug, Clone)]
pub struct ShedAware<M> {
    inner: M,
    last_shed: u64,
    veto: Option<DecisionTrace>,
}

impl<M: Mechanism> ShedAware<M> {
    /// Wraps `inner`; the wrapper keeps the inner mechanism's name so
    /// traces stay attributable to the decision logic that ran.
    #[must_use]
    pub fn new(inner: M) -> Self {
        ShedAware {
            inner,
            last_shed: 0,
            veto: None,
        }
    }

    /// The wrapped mechanism.
    #[must_use]
    pub fn inner(&self) -> &M {
        &self.inner
    }
}

impl<M: Mechanism> Mechanism for ShedAware<M> {
    fn name(&self) -> &'static str {
        self.inner.name()
    }

    fn reconfigure(
        &mut self,
        snap: &MonitorSnapshot,
        current: &Config,
        shape: &ProgramShape,
        res: &Resources,
    ) -> Option<Config> {
        let shed_now = snap.admission.shed();
        let shed_delta = shed_now.saturating_sub(self.last_shed);
        self.last_shed = shed_now;
        self.veto = None;
        let proposal = self.inner.reconfigure(snap, current, shape, res)?;
        if shed_delta > 0 && proposal.total_threads() < current.total_threads() {
            self.veto = Some(
                DecisionTrace::new(Rationale::AdmissionShedding, "hold")
                    .observing("shed_delta", shed_delta as f64)
                    .observing("shed_fraction", snap.admission.shed_fraction())
                    .observing("vetoed_threads", f64::from(proposal.total_threads()))
                    .observing("current_threads", f64::from(current.total_threads())),
            );
            return None;
        }
        Some(proposal)
    }

    fn applied(&mut self, config: &Config) {
        self.inner.applied(config);
    }

    fn initial(&mut self, shape: &ProgramShape, res: &Resources) -> Option<Config> {
        self.inner.initial(shape, res)
    }

    fn explain(&self) -> Option<DecisionTrace> {
        // A veto supersedes the inner explanation: the inner mechanism
        // would narrate the shrink it proposed, but the shrink did not
        // happen — the audit must say why.
        self.veto.clone().or_else(|| self.inner.explain())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dope_core::{AdmissionStats, ShapeNode, StaticMechanism, TaskConfig, TaskKind};

    fn shape() -> ProgramShape {
        ProgramShape::new(vec![ShapeNode::leaf("work", TaskKind::Par)])
    }

    fn config(extent: u32) -> Config {
        Config::new(vec![TaskConfig::leaf("work", extent)])
    }

    fn snap_with_shed(shed_high_water: u64) -> MonitorSnapshot {
        let mut snap = MonitorSnapshot::at(1.0);
        snap.admission = AdmissionStats {
            offered: 100 + shed_high_water,
            admitted: 100,
            shed_high_water,
            shed_deadline: 0,
            mean_queue_delay_secs: 0.01,
        };
        snap
    }

    #[test]
    fn shrink_is_vetoed_while_shedding() {
        // The inner mechanism insists on extent 2; at extent 4 that is a
        // shrink, which must be vetoed while the gate drops offers.
        let mut mech = ShedAware::new(StaticMechanism::new(config(2)));
        let proposal = mech.reconfigure(
            &snap_with_shed(10),
            &config(4),
            &shape(),
            &Resources::threads(8),
        );
        assert_eq!(proposal, None);
        let trace = mech.explain().expect("veto must be explained");
        assert_eq!(trace.rationale, Rationale::AdmissionShedding);
    }

    #[test]
    fn growth_passes_through_while_shedding() {
        let mut mech = ShedAware::new(StaticMechanism::new(config(6)));
        let proposal = mech.reconfigure(
            &snap_with_shed(10),
            &config(4),
            &shape(),
            &Resources::threads(8),
        );
        assert_eq!(proposal, Some(config(6)));
    }

    #[test]
    fn shrink_passes_once_shedding_stops() {
        let mut mech = ShedAware::new(StaticMechanism::new(config(2)));
        // First consult observes cumulative shed=10 (delta 10): veto.
        assert_eq!(
            mech.reconfigure(
                &snap_with_shed(10),
                &config(4),
                &shape(),
                &Resources::threads(8)
            ),
            None
        );
        // Second consult sees the same cumulative total (delta 0): the
        // gate went quiet, so the shrink is allowed through.
        assert_eq!(
            mech.reconfigure(
                &snap_with_shed(10),
                &config(4),
                &shape(),
                &Resources::threads(8)
            ),
            Some(config(2))
        );
        assert!(mech.explain().is_some());
    }

    #[test]
    fn transparent_without_an_admission_gate() {
        let mut mech = ShedAware::new(StaticMechanism::new(config(2)));
        let snap = MonitorSnapshot::at(1.0);
        assert_eq!(
            mech.reconfigure(&snap, &config(4), &shape(), &Resources::threads(8)),
            Some(config(2))
        );
        assert_eq!(mech.name(), "Static");
    }
}
