//! The throughput-maximizing mechanism of paper Figure 10.

use crate::pipeline_util;
use dope_core::{
    Config, DecisionCandidate, DecisionTrace, Mechanism, MonitorSnapshot, ProgramShape, Rationale,
    Resources,
};

/// Assigns each task a DoP extent proportional to its execution time —
/// the paper's example mechanism (Figure 10): "tasks that take longer to
/// execute should be assigned more resources".
///
/// Step 1 computes the total execution time over the tasks of the
/// descriptor; step 2 assigns each task `nthreads x exec / total`,
/// pinning sequential tasks to one worker and respecting extent caps.
///
/// # Example
///
/// ```
/// use dope_mechanisms::Proportional;
///
/// let mech = Proportional::new();
/// assert_eq!(dope_core::Mechanism::name(&mech), "Proportional");
/// ```
#[derive(Debug, Clone, Default)]
pub struct Proportional {
    last_decision: Option<DecisionTrace>,
}

impl Proportional {
    /// A proportional mechanism.
    #[must_use]
    pub fn new() -> Self {
        Proportional::default()
    }
}

impl Mechanism for Proportional {
    fn name(&self) -> &'static str {
        "Proportional"
    }

    fn reconfigure(
        &mut self,
        snap: &MonitorSnapshot,
        current: &Config,
        shape: &ProgramShape,
        res: &Resources,
    ) -> Option<Config> {
        let (alt, views) = pipeline_util::stages(snap, current, shape)?;
        // Nothing observed yet: keep the current configuration.
        if views.iter().all(|v| v.mean_exec <= 0.0) {
            return None;
        }
        let extents =
            pipeline_util::proportional_extents(&views, res.threads, |v| v.mean_exec.max(1e-9));
        let proposal = pipeline_util::config_from_extents(current, alt, shape, &extents)?;
        let changed = proposal != *current;

        // Audit trail: one candidate per stage, scored by its share of
        // the total service time (the quantity the split follows).
        let total_exec: f64 = views.iter().map(|v| v.mean_exec.max(0.0)).sum();
        let chosen = if changed {
            pipeline_util::extents_label(&extents)
        } else {
            "hold".to_string()
        };
        let mut trace = DecisionTrace::new(Rationale::ThroughputBalance, chosen)
            .observing("total_mean_exec_secs", total_exec);
        for (view, &extent) in views.iter().zip(&extents) {
            trace = trace
                .observing(format!("{}_mean_exec_secs", view.name), view.mean_exec)
                .candidate(DecisionCandidate::new(
                    format!("{}: extent={extent}", view.name),
                    if total_exec > 0.0 {
                        view.mean_exec.max(0.0) / total_exec
                    } else {
                        0.0
                    },
                ));
        }
        if let Some(rate) = pipeline_util::bottleneck_rate(&views, &extents) {
            trace = trace.predicting(rate);
        }
        self.last_decision = Some(trace);

        changed.then_some(proposal)
    }

    fn explain(&self) -> Option<DecisionTrace> {
        self.last_decision.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dope_core::{ShapeNode, TaskConfig, TaskKind, TaskPath, TaskStats};

    fn pipeline_shape() -> ProgramShape {
        ProgramShape::new(vec![ShapeNode {
            name: "pipe".into(),
            kind: TaskKind::Par,
            max_extent: Some(1),
            alternatives: vec![vec![
                ShapeNode::leaf("in", TaskKind::Seq),
                ShapeNode::leaf("fast", TaskKind::Par),
                ShapeNode::leaf("slow", TaskKind::Par),
                ShapeNode::leaf("out", TaskKind::Seq),
            ]],
        }])
    }

    fn config(extents: &[u32]) -> Config {
        Config::new(vec![TaskConfig::nest(
            "pipe",
            1,
            0,
            vec![
                TaskConfig::leaf("in", extents[0]),
                TaskConfig::leaf("fast", extents[1]),
                TaskConfig::leaf("slow", extents[2]),
                TaskConfig::leaf("out", extents[3]),
            ],
        )])
    }

    fn snapshot(execs: &[f64]) -> MonitorSnapshot {
        let mut snap = MonitorSnapshot::at(1.0);
        for (i, &e) in execs.iter().enumerate() {
            snap.tasks.insert(
                TaskPath::root_child(0).child(i as u16),
                TaskStats {
                    invocations: 10,
                    mean_exec_secs: e,
                    throughput: 1.0 / e,
                    load: 0.0,
                    utilization: 0.5,
                    ..TaskStats::default()
                },
            );
        }
        snap
    }

    #[test]
    fn assigns_more_workers_to_longer_tasks() {
        let shape = pipeline_shape();
        let mut mech = Proportional::new();
        let current = config(&[1, 11, 11, 1]);
        let snap = snapshot(&[0.001, 0.01, 0.03, 0.001]);
        let new = mech
            .reconfigure(&snap, &current, &shape, &Resources::threads(24))
            .unwrap();
        let fast = new.extent_of(&"0.1".parse().unwrap()).unwrap();
        let slow = new.extent_of(&"0.2".parse().unwrap()).unwrap();
        assert!(slow > fast, "slow {slow} fast {fast}");
        // Sequential stages stay at one worker.
        assert_eq!(new.extent_of(&"0.0".parse().unwrap()), Some(1));
        assert_eq!(new.extent_of(&"0.3".parse().unwrap()), Some(1));
        new.validate(&shape, 24).unwrap();
    }

    #[test]
    fn stays_within_budget() {
        let shape = pipeline_shape();
        let mut mech = Proportional::new();
        let current = config(&[1, 2, 2, 1]);
        let snap = snapshot(&[0.5, 1.0, 9.0, 0.5]);
        for threads in [6u32, 10, 24, 48] {
            let new = mech
                .reconfigure(&snap, &current, &shape, &Resources::threads(threads))
                .unwrap();
            assert!(
                new.total_threads() <= threads,
                "threads {} budget {threads}",
                new.total_threads()
            );
        }
    }

    #[test]
    fn silent_without_observations() {
        let shape = pipeline_shape();
        let mut mech = Proportional::new();
        let current = config(&[1, 2, 2, 1]);
        let snap = MonitorSnapshot::at(0.0);
        assert!(mech
            .reconfigure(&snap, &current, &shape, &Resources::threads(24))
            .is_none());
    }

    #[test]
    fn no_proposal_when_already_proportional() {
        let shape = pipeline_shape();
        let mut mech = Proportional::new();
        let snap = snapshot(&[0.001, 0.01, 0.01, 0.001]);
        let current = mech
            .reconfigure(
                &snap,
                &config(&[1, 1, 1, 1]),
                &shape,
                &Resources::threads(24),
            )
            .unwrap();
        assert!(
            mech.reconfigure(&snap, &current, &shape, &Resources::threads(24))
                .is_none(),
            "idempotent on its own output"
        );
    }
}
