//! Throughput Balance with Fusion (paper §7.2).

use crate::pipeline_util::{self, StageView};
use dope_core::{
    Config, DecisionCandidate, DecisionTrace, Mechanism, MonitorSnapshot, ProgramShape, Rationale,
    Resources,
};

/// *Throughput Balance with Fusion*: assigns each task a DoP extent
/// inversely proportional to its moving-average throughput (i.e.
/// proportional to its per-item execution time), and — when the imbalance
/// between task throughputs exceeds a threshold — switches to a
/// developer-registered *fused* descriptor alternative, avoiding the
/// inefficiency of a heavily unbalanced pipeline and the overhead of
/// forwarding data between tasks.
///
/// `Tbf::without_fusion()` is the paper's **DoPE-TB** baseline, which
/// demonstrates the benefit of fusion in Figure 15.
///
/// # Example
///
/// ```
/// use dope_mechanisms::Tbf;
///
/// let tbf = Tbf::default();
/// assert_eq!(dope_core::Mechanism::name(&tbf), "TBF");
/// let tb = Tbf::without_fusion();
/// assert_eq!(dope_core::Mechanism::name(&tb), "TB");
/// ```
#[derive(Debug, Clone)]
pub struct Tbf {
    imbalance_threshold: f64,
    fusion: bool,
    last_decision: Option<DecisionTrace>,
}

impl Tbf {
    /// TBF with the paper's imbalance threshold of 0.5.
    #[must_use]
    pub fn new() -> Self {
        Tbf {
            imbalance_threshold: 0.5,
            fusion: true,
            last_decision: None,
        }
    }

    /// The TB variant: balancing only, fusion disabled.
    #[must_use]
    pub fn without_fusion() -> Self {
        Tbf {
            fusion: false,
            ..Tbf::new()
        }
    }

    /// Overrides the imbalance threshold above which fusion triggers.
    ///
    /// # Panics
    ///
    /// Panics if `threshold` is not in `(0, 1]`.
    #[must_use]
    pub fn with_imbalance_threshold(mut self, threshold: f64) -> Self {
        assert!(
            threshold > 0.0 && threshold <= 1.0,
            "threshold must be in (0, 1]"
        );
        self.imbalance_threshold = threshold;
        self
    }

    /// Potential throughput of each stage: `extent / mean_exec`.
    fn imbalance(views: &[StageView], extents: &[u32]) -> f64 {
        let potentials: Vec<f64> = views
            .iter()
            .zip(extents)
            .filter(|(v, _)| v.mean_exec > 0.0)
            .map(|(v, &e)| f64::from(e.max(1)) / v.mean_exec)
            .collect();
        if potentials.len() < 2 {
            return 0.0;
        }
        let max = potentials.iter().copied().fold(f64::MIN, f64::max);
        let min = potentials.iter().copied().fold(f64::MAX, f64::min);
        if max <= 0.0 {
            0.0
        } else {
            1.0 - min / max
        }
    }
}

impl Default for Tbf {
    fn default() -> Self {
        Tbf::new()
    }
}

impl Mechanism for Tbf {
    fn name(&self) -> &'static str {
        if self.fusion {
            "TBF"
        } else {
            "TB"
        }
    }

    fn reconfigure(
        &mut self,
        snap: &MonitorSnapshot,
        current: &Config,
        shape: &ProgramShape,
        res: &Resources,
    ) -> Option<Config> {
        let (alt, views) = pipeline_util::stages(snap, current, shape)?;
        if views.iter().all(|v| v.mean_exec <= 0.0) {
            return None;
        }

        // Balance: extent inversely proportional to per-item throughput,
        // i.e. proportional to execution time.
        let extents =
            pipeline_util::proportional_extents(&views, res.threads, |v| v.mean_exec.max(1e-9));
        let imbalance = Self::imbalance(&views, &extents);

        // Audit trail: TBF always weighs the same two candidates — keep
        // rebalancing, or switch to the fused descriptor. Fusion wins once
        // the residual imbalance of the *best* balance exceeds the
        // threshold.
        let threshold = self.imbalance_threshold;
        let fusion_enabled = self.fusion;
        let mut balance_candidate = DecisionCandidate::new(
            format!("balance: {}", pipeline_util::extents_label(&extents)),
            1.0 - imbalance,
        );
        if let Some(rate) = pipeline_util::bottleneck_rate(&views, &extents) {
            balance_candidate = balance_candidate.predicting(rate);
        }
        let trace = |rationale, chosen: String, predicted: Option<f64>| {
            let mut t = DecisionTrace::new(rationale, chosen)
                .observing("imbalance", imbalance)
                .observing("imbalance_threshold", threshold)
                .observing("fusion_enabled", if fusion_enabled { 1.0 } else { 0.0 })
                .candidate(balance_candidate.clone())
                .candidate(DecisionCandidate::new("fuse", imbalance));
            if let Some(p) = predicted {
                t = t.predicting(p);
            }
            t
        };

        // Fusion check: if the best achievable balance is still worse than
        // the threshold and a fused descriptor exists, use it.
        let outer = shape.tasks.first()?;
        let fused_alt = outer.alternatives.len().checked_sub(1).filter(|&a| a > 0);
        if self.fusion && alt == 0 {
            if let Some(fused) = fused_alt {
                if imbalance > self.imbalance_threshold {
                    // Build the fused configuration: re-balance over the
                    // fused descriptor's stages (unobserved fused stages
                    // inherit equal shares).
                    let fused_nodes = &outer.alternatives[fused];
                    let template = pipeline_util::config_from_extents(
                        current,
                        fused,
                        shape,
                        &vec![1; fused_nodes.len()],
                    )?;
                    let (_, fused_views) = pipeline_util::stages(snap, &template, shape)?;
                    let fused_extents =
                        pipeline_util::proportional_extents(&fused_views, res.threads, |v| {
                            if v.parallel {
                                1.0
                            } else {
                                1e-9
                            }
                        });
                    let proposal =
                        pipeline_util::config_from_extents(current, fused, shape, &fused_extents)?;
                    let changed = proposal != *current;
                    let chosen = if changed {
                        format!(
                            "fuse alt={fused} {}",
                            pipeline_util::extents_label(&fused_extents)
                        )
                    } else {
                        "hold".to_string()
                    };
                    self.last_decision = Some(trace(
                        Rationale::ImbalanceFusion,
                        chosen,
                        pipeline_util::bottleneck_rate(&fused_views, &fused_extents),
                    ));
                    return changed.then_some(proposal);
                }
            }
        }

        // Already fused: keep balancing inside the fused descriptor.
        let proposal = pipeline_util::config_from_extents(current, alt, shape, &extents)?;
        let changed = proposal != *current;
        let chosen = if changed {
            pipeline_util::extents_label(&extents)
        } else {
            "hold".to_string()
        };
        let rationale = if changed {
            Rationale::ThroughputBalance
        } else {
            Rationale::Hold
        };
        self.last_decision = Some(trace(
            rationale,
            chosen,
            pipeline_util::bottleneck_rate(&views, &extents),
        ));
        changed.then_some(proposal)
    }

    fn explain(&self) -> Option<DecisionTrace> {
        self.last_decision.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dope_core::{ShapeNode, TaskConfig, TaskKind, TaskPath, TaskStats};

    fn shape_with_fused() -> ProgramShape {
        ProgramShape::new(vec![ShapeNode {
            name: "dedup".into(),
            kind: TaskKind::Par,
            max_extent: Some(1),
            alternatives: vec![
                vec![
                    ShapeNode::leaf("fragment", TaskKind::Seq),
                    ShapeNode::leaf("refine", TaskKind::Par),
                    ShapeNode::leaf("compress", TaskKind::Par),
                    ShapeNode::leaf("write", TaskKind::Seq),
                ],
                vec![
                    ShapeNode::leaf("fragment", TaskKind::Seq),
                    ShapeNode::leaf("fused", TaskKind::Par),
                    ShapeNode::leaf("write", TaskKind::Seq),
                ],
            ],
        }])
    }

    fn unfused_config(extents: &[u32]) -> Config {
        Config::new(vec![TaskConfig::nest(
            "dedup",
            1,
            0,
            vec![
                TaskConfig::leaf("fragment", extents[0]),
                TaskConfig::leaf("refine", extents[1]),
                TaskConfig::leaf("compress", extents[2]),
                TaskConfig::leaf("write", extents[3]),
            ],
        )])
    }

    fn snapshot(execs: &[f64]) -> MonitorSnapshot {
        let mut snap = MonitorSnapshot::at(1.0);
        for (i, &e) in execs.iter().enumerate() {
            snap.tasks.insert(
                TaskPath::root_child(0).child(i as u16),
                TaskStats {
                    invocations: 100,
                    mean_exec_secs: e,
                    throughput: 1.0 / e,
                    load: 1.0,
                    utilization: 0.9,
                    ..TaskStats::default()
                },
            );
        }
        snap
    }

    #[test]
    fn balances_when_imbalance_is_mild() {
        let shape = shape_with_fused();
        let mut tbf = Tbf::new();
        // Parallel stages close in cost and fast sequential endpoints
        // that stay ahead of them: balancing suffices.
        let snap = snapshot(&[0.0004, 0.004, 0.005, 0.0004]);
        let new = tbf
            .reconfigure(
                &snap,
                &unfused_config(&[1, 11, 11, 1]),
                &shape,
                &Resources::threads(24),
            )
            .unwrap();
        let nest = new.tasks[0].nested.as_ref().unwrap();
        assert_eq!(nest.alternative, 0, "stays unfused");
        let refine = new.extent_of(&"0.1".parse().unwrap()).unwrap();
        let compress = new.extent_of(&"0.2".parse().unwrap()).unwrap();
        assert!(compress >= refine);
        new.validate(&shape, 24).unwrap();
    }

    #[test]
    fn fuses_under_heavy_imbalance() {
        let shape = shape_with_fused();
        let mut tbf = Tbf::new();
        // The sequential fragment stage is the bottleneck: potential
        // throughput 1/0.02 = 50/s versus parallel stages in the
        // thousands. Balance cannot fix that; fusion can.
        let snap = snapshot(&[0.020, 0.001, 0.001, 0.0005]);
        let new = tbf
            .reconfigure(
                &snap,
                &unfused_config(&[1, 11, 11, 1]),
                &shape,
                &Resources::threads(24),
            )
            .unwrap();
        let nest = new.tasks[0].nested.as_ref().unwrap();
        assert_eq!(nest.alternative, 1, "switches to the fused descriptor");
        assert_eq!(nest.tasks.len(), 3);
        new.validate(&shape, 24).unwrap();
        // The fused parallel stage receives the spare budget.
        let fused_extent = new.extent_of(&"0.1".parse().unwrap()).unwrap();
        assert_eq!(fused_extent, 22);
    }

    #[test]
    fn tb_never_fuses() {
        let shape = shape_with_fused();
        let mut tb = Tbf::without_fusion();
        let snap = snapshot(&[0.020, 0.001, 0.001, 0.0005]);
        let new = tb
            .reconfigure(
                &snap,
                &unfused_config(&[1, 5, 17, 1]),
                &shape,
                &Resources::threads(24),
            )
            .unwrap();
        assert_eq!(new.tasks[0].nested.as_ref().unwrap().alternative, 0);
    }

    #[test]
    fn imbalance_metric_bounds() {
        let shape = shape_with_fused();
        let snap = snapshot(&[0.01, 0.01, 0.01, 0.01]);
        let (_, views) =
            pipeline_util::stages(&snap, &unfused_config(&[1, 1, 1, 1]), &shape).unwrap();
        let balanced = Tbf::imbalance(&views, &[1, 1, 1, 1]);
        assert!(balanced.abs() < 1e-9);
        let skewed = Tbf::imbalance(&views, &[1, 10, 1, 1]);
        assert!(skewed > 0.8);
    }

    #[test]
    fn silent_without_observations() {
        let shape = shape_with_fused();
        let mut tbf = Tbf::new();
        assert!(tbf
            .reconfigure(
                &MonitorSnapshot::at(0.0),
                &unfused_config(&[1, 1, 1, 1]),
                &shape,
                &Resources::threads(24)
            )
            .is_none());
    }
}
