//! The DoPE mechanism library.
//!
//! A *mechanism* encodes the logic that adapts an application's
//! parallelism configuration to meet a performance goal (paper §4–§7).
//! This crate implements every mechanism the paper evaluates, plus the
//! pedagogical proportional mechanism of Figure 10 and an oracle:
//!
//! | Goal | Mechanisms |
//! |------|------------|
//! | Min response time, N threads | [`WqtH`], [`WqLinear`], [`Oracle`] |
//! | Max throughput, N threads | [`Tbf`] (and TB), [`Fdp`], [`Seda`], [`Proportional`] |
//! | Max throughput, N threads, P watts | [`Tpc`] |
//!
//! [`for_goal`] returns the paper's default mechanism for each goal — "a
//! human need not select a particular mechanism to use from among many"
//! (§7).
//!
//! # Example
//!
//! ```
//! use dope_core::Goal;
//! use dope_mechanisms::for_goal;
//!
//! let mech = for_goal(Goal::MaxThroughput { threads: 24 });
//! assert_eq!(mech.name(), "TBF");
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod fdp;
pub mod oracle;
pub mod proportional;
pub mod seda;
pub mod shed_aware;
pub mod tbf;
pub mod tpc;
pub mod wq_linear;
pub mod wq_linear_h;
pub mod wqt_h;

pub use fdp::Fdp;
pub use oracle::Oracle;
pub use proportional::Proportional;
pub use seda::Seda;
pub use shed_aware::ShedAware;
pub use tbf::Tbf;
pub use tpc::Tpc;
pub use wq_linear::WqLinear;
pub use wq_linear_h::WqLinearH;
pub use wqt_h::WqtH;

use dope_core::{Goal, Mechanism};

/// The default mechanism for a performance goal.
///
/// * `MinResponseTime` → WQ-Linear (the paper's best response-time
///   characteristic, §8.2.1);
/// * `MaxThroughput` → TBF (outperforms all other mechanisms, §8.2.2);
/// * `MaxThroughputUnderPower` → TPC (§8.2.3).
#[must_use]
pub fn for_goal(goal: Goal) -> Box<dyn Mechanism> {
    match goal {
        Goal::MinResponseTime { .. } => Box::new(WqLinear::default()),
        Goal::MaxThroughput { .. } => Box::new(Tbf::default()),
        Goal::MaxThroughputUnderPower { .. } => Box::new(Tpc::default()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_mechanisms_match_paper() {
        assert_eq!(
            for_goal(Goal::MinResponseTime { threads: 24 }).name(),
            "WQ-Linear"
        );
        assert_eq!(for_goal(Goal::MaxThroughput { threads: 24 }).name(), "TBF");
        assert_eq!(
            for_goal(Goal::MaxThroughputUnderPower {
                threads: 24,
                watts: 630.0
            })
            .name(),
            "TPC"
        );
    }
}

/// Shared helpers for pipeline-shaped programs (a single nest whose chosen
/// alternative is a list of stages). Useful to mechanism developers
/// writing new pipeline mechanisms.
pub mod pipeline_util {
    use dope_core::{Config, MonitorSnapshot, ProgramShape, ShapeNode, TaskConfig, TaskPath};

    /// Per-stage view of a pipeline configuration.
    #[derive(Debug, Clone)]
    pub struct StageView {
        /// Path of the stage task (`0.s`).
        pub path: TaskPath,
        /// Stage name.
        pub name: String,
        /// `true` for parallel stages.
        pub parallel: bool,
        /// Extent cap, if declared.
        pub max_extent: Option<u32>,
        /// Current extent.
        pub extent: u32,
        /// Moving-average per-item execution time (0 if unobserved).
        pub mean_exec: f64,
        /// Observed throughput (items/s).
        pub throughput: f64,
        /// Input-queue occupancy.
        pub load: f64,
        /// Busy fraction of the stage's workers.
        pub utilization: f64,
    }

    /// Extracts the stage views of the nest at root index 0.
    ///
    /// Returns `None` when the program is not pipeline-shaped.
    pub fn stages(
        snap: &MonitorSnapshot,
        config: &Config,
        shape: &ProgramShape,
    ) -> Option<(usize, Vec<StageView>)> {
        let outer = config.tasks.first()?;
        let nest = outer.nested.as_ref()?;
        let outer_shape = shape.tasks.first()?;
        let alt_nodes: &[ShapeNode] = outer_shape.alternatives.get(nest.alternative)?;
        let mut views = Vec::with_capacity(nest.tasks.len());
        for (s, (task, node)) in nest.tasks.iter().zip(alt_nodes).enumerate() {
            let path = TaskPath::root_child(0).child(s as u16);
            let stats = snap.task(&path).copied().unwrap_or_default();
            views.push(StageView {
                path,
                name: task.name.clone(),
                parallel: node.kind == dope_core::TaskKind::Par,
                max_extent: node.max_extent,
                extent: task.extent,
                mean_exec: stats.mean_exec_secs,
                throughput: stats.throughput,
                load: stats.load,
                utilization: stats.utilization,
            });
        }
        Some((nest.alternative, views))
    }

    /// Builds a pipeline configuration from per-stage extents.
    pub fn config_from_extents(
        config: &Config,
        alternative: usize,
        shape: &ProgramShape,
        extents: &[u32],
    ) -> Option<Config> {
        let outer = config.tasks.first()?;
        let outer_shape = shape.tasks.first()?;
        let nodes = outer_shape.alternatives.get(alternative)?;
        if nodes.len() != extents.len() {
            return None;
        }
        let children = nodes
            .iter()
            .zip(extents)
            .map(|(n, &e)| TaskConfig::leaf(n.name.clone(), e.max(1)))
            .collect();
        Some(Config::new(vec![TaskConfig::nest(
            outer.name.clone(),
            outer.extent,
            alternative,
            children,
        )]))
    }

    /// The bottleneck law's steady-state throughput prediction for
    /// per-stage `extents`: the minimum stage service rate
    /// `extent / mean_exec` over stages with a measured execution time.
    ///
    /// Returns `None` when no stage has been observed yet — there is no
    /// model to predict from. Mechanisms use this to fill
    /// [`DecisionTrace::predicted_throughput`](dope_core::DecisionTrace),
    /// which the executive scores against the realized bottleneck one
    /// epoch later.
    #[must_use]
    pub fn bottleneck_rate(nodes: &[StageView], extents: &[u32]) -> Option<f64> {
        nodes
            .iter()
            .zip(extents)
            .filter(|(v, _)| v.mean_exec > 0.0)
            .map(|(v, &e)| f64::from(e.max(1)) / v.mean_exec)
            .min_by(f64::total_cmp)
    }

    /// Renders per-stage extents as a compact action label
    /// (`"extents=1/3/2/1"`), for [`DecisionTrace`](dope_core::DecisionTrace)
    /// candidate and chosen-action fields.
    #[must_use]
    pub fn extents_label(extents: &[u32]) -> String {
        let parts: Vec<String> = extents.iter().map(u32::to_string).collect();
        format!("extents={}", parts.join("/"))
    }

    /// Distributes `budget` workers over stages proportionally to their
    /// execution times (sequential stages pinned to one worker), always
    /// giving every stage at least one worker and respecting caps.
    pub fn proportional_extents(
        nodes: &[StageView],
        budget: u32,
        exec_of: impl Fn(&StageView) -> f64,
    ) -> Vec<u32> {
        let n = nodes.len() as u32;
        let budget = budget.max(n);
        // Sequential stages and floor-of-one allocations first.
        let mut extents: Vec<u32> = nodes.iter().map(|_| 1u32).collect();
        let mut remaining = budget - n;
        let par_idx: Vec<usize> = nodes
            .iter()
            .enumerate()
            .filter(|(_, v)| v.parallel)
            .map(|(i, _)| i)
            .collect();
        if par_idx.is_empty() || remaining == 0 {
            return extents;
        }
        let total_exec: f64 = par_idx.iter().map(|&i| exec_of(&nodes[i]).max(1e-12)).sum();
        // Largest-remainder apportionment of the extra workers.
        let mut shares: Vec<(usize, f64)> = par_idx
            .iter()
            .map(|&i| {
                (
                    i,
                    f64::from(remaining) * exec_of(&nodes[i]).max(1e-12) / total_exec,
                )
            })
            .collect();
        for &mut (i, ref mut share) in &mut shares {
            let whole = share.floor() as u32;
            let cap_room = nodes[i]
                .max_extent
                .map_or(u32::MAX, |m| m.saturating_sub(extents[i]));
            let grant = whole.min(cap_room).min(remaining);
            extents[i] += grant;
            remaining -= grant;
            *share -= f64::from(grant);
        }
        // Hand out leftovers by largest fractional remainder.
        shares.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap_or(std::cmp::Ordering::Equal));
        let mut k = 0;
        while remaining > 0 && k < shares.len() * 2 {
            let (i, _) = shares[k % shares.len()];
            let cap = nodes[i].max_extent.unwrap_or(u32::MAX);
            if extents[i] < cap {
                extents[i] += 1;
                remaining -= 1;
            }
            k += 1;
        }
        extents
    }
}
