//! Workload substrate for the DoPE reproduction.
//!
//! The paper simulates user requests "using a task queuing thread that
//! enqueues tasks to a work queue according to a Poisson distribution"
//! (§8.2); the *load factor* is the average arrival rate divided by the
//! maximum throughput sustainable by the system. This crate provides that
//! machinery:
//!
//! * [`PoissonProcess`] and [`ArrivalSchedule`] — seeded, reproducible
//!   open-workload arrival processes;
//! * [`WorkQueue`] — a thread-safe, instrumented work queue with the
//!   close-to-drain idiom the paper's `FiniCB` callbacks implement;
//! * [`AdmissionQueue`] — the same queue behind an admission gate
//!   (block / shed / deadline policies) for behaviour past saturation;
//! * [`ResponseStats`], [`ThroughputMeter`], [`TimeSeries`] — the
//!   measurements behind every figure in the evaluation.
//!
//! # Example
//!
//! ```
//! use dope_workload::{ArrivalSchedule, ResponseStats};
//!
//! // 500 requests at load factor 0.8 against a system whose max
//! // throughput is 2 requests/second.
//! let schedule = ArrivalSchedule::poisson(0.8 * 2.0, 500, 42);
//! assert_eq!(schedule.len(), 500);
//!
//! let mut stats = ResponseStats::new();
//! stats.record(1.5);
//! stats.record(2.5);
//! assert_eq!(stats.mean(), Some(2.0));
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod admission;
pub mod arrivals;
pub mod queue;
pub mod stats;

pub use admission::{AdmissionQueue, OfferOutcome};
pub use arrivals::{ArrivalSchedule, PoissonProcess};
pub use queue::{DequeueOutcome, WorkQueue};
pub use stats::{ResponseStats, ThroughputMeter, TimeSeries};
