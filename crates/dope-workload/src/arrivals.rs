//! Open-workload arrival processes.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// A Poisson arrival process: exponentially distributed inter-arrival
/// times with a given rate, produced from a fixed seed.
///
/// Iterating yields successive absolute arrival times in seconds.
///
/// # Example
///
/// ```
/// use dope_workload::PoissonProcess;
///
/// let arrivals: Vec<f64> = PoissonProcess::new(10.0, 1).take(3).collect();
/// assert!(arrivals.windows(2).all(|w| w[0] < w[1]));
/// ```
#[derive(Debug, Clone)]
pub struct PoissonProcess {
    rate: f64,
    now: f64,
    rng: SmallRng,
}

impl PoissonProcess {
    /// A process with `rate` arrivals per second.
    ///
    /// # Panics
    ///
    /// Panics if `rate` is not positive and finite.
    #[must_use]
    pub fn new(rate: f64, seed: u64) -> Self {
        assert!(
            rate.is_finite() && rate > 0.0,
            "arrival rate must be positive, got {rate}"
        );
        PoissonProcess {
            rate,
            now: 0.0,
            rng: SmallRng::seed_from_u64(seed),
        }
    }

    /// The arrival rate in requests per second.
    #[must_use]
    pub fn rate(&self) -> f64 {
        self.rate
    }
}

impl Iterator for PoissonProcess {
    type Item = f64;

    fn next(&mut self) -> Option<f64> {
        let u: f64 = self.rng.gen_range(f64::EPSILON..1.0);
        self.now += -u.ln() / self.rate;
        Some(self.now)
    }
}

/// A finite, precomputed schedule of arrival times.
///
/// The evaluation harness determines the maximum sustainable throughput of
/// each application (with `N = 500` tasks, §8.2), then sweeps the load
/// factor; [`ArrivalSchedule::for_load_factor`] encodes that recipe.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ArrivalSchedule {
    times: Vec<f64>,
    rate: f64,
}

impl ArrivalSchedule {
    /// `count` Poisson arrivals at `rate` requests/second.
    #[must_use]
    pub fn poisson(rate: f64, count: usize, seed: u64) -> Self {
        ArrivalSchedule {
            times: PoissonProcess::new(rate, seed).take(count).collect(),
            rate,
        }
    }

    /// Arrivals at `load_factor x max_throughput`, the paper's load axis.
    ///
    /// # Panics
    ///
    /// Panics if `load_factor` or `max_throughput` is not positive.
    #[must_use]
    pub fn for_load_factor(load_factor: f64, max_throughput: f64, count: usize, seed: u64) -> Self {
        assert!(load_factor > 0.0, "load factor must be positive");
        assert!(max_throughput > 0.0, "max throughput must be positive");
        ArrivalSchedule::poisson(load_factor * max_throughput, count, seed)
    }

    /// A deterministic schedule with constant inter-arrival gaps (useful
    /// in tests).
    #[must_use]
    pub fn uniform(gap_secs: f64, count: usize) -> Self {
        assert!(gap_secs > 0.0, "gap must be positive");
        ArrivalSchedule {
            times: (1..=count).map(|i| i as f64 * gap_secs).collect(),
            rate: 1.0 / gap_secs,
        }
    }

    /// The arrival times, ascending, in seconds.
    #[must_use]
    pub fn times(&self) -> &[f64] {
        &self.times
    }

    /// Number of arrivals.
    #[must_use]
    pub fn len(&self) -> usize {
        self.times.len()
    }

    /// `true` if the schedule has no arrivals.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.times.is_empty()
    }

    /// The nominal arrival rate.
    #[must_use]
    pub fn rate(&self) -> f64 {
        self.rate
    }

    /// Iterates over arrival times.
    pub fn iter(&self) -> impl Iterator<Item = f64> + '_ {
        self.times.iter().copied()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn poisson_times_are_strictly_increasing() {
        let times: Vec<f64> = PoissonProcess::new(5.0, 3).take(1000).collect();
        assert!(times.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn poisson_mean_gap_matches_rate() {
        let rate = 8.0;
        let times: Vec<f64> = PoissonProcess::new(rate, 11).take(20_000).collect();
        let mean_gap = times.last().unwrap() / times.len() as f64;
        assert!(
            (mean_gap - 1.0 / rate).abs() < 0.01,
            "mean gap {mean_gap} vs expected {}",
            1.0 / rate
        );
    }

    #[test]
    fn schedule_is_reproducible_per_seed() {
        let a = ArrivalSchedule::poisson(2.0, 100, 7);
        let b = ArrivalSchedule::poisson(2.0, 100, 7);
        assert_eq!(a, b);
        let c = ArrivalSchedule::poisson(2.0, 100, 8);
        assert_ne!(a, c);
    }

    #[test]
    fn load_factor_scales_rate() {
        let s = ArrivalSchedule::for_load_factor(0.5, 10.0, 10, 1);
        assert!((s.rate() - 5.0).abs() < 1e-12);
    }

    #[test]
    fn uniform_schedule_has_constant_gaps() {
        let s = ArrivalSchedule::uniform(0.5, 4);
        assert_eq!(s.times(), &[0.5, 1.0, 1.5, 2.0]);
        assert_eq!(s.len(), 4);
        assert!(!s.is_empty());
    }

    #[test]
    #[should_panic(expected = "arrival rate must be positive")]
    fn zero_rate_panics() {
        let _ = PoissonProcess::new(0.0, 0);
    }
}
