//! Measurement types behind the evaluation figures.

use dope_metrics::LocalHistogram;
use serde::{Deserialize, Serialize};

/// Accumulates per-request response times (paper Equation 1's
/// `T_response`): the interval from submission to completion.
///
/// # Memory bound and accuracy
///
/// Open workloads record one response per request, so an unbounded
/// sample vector would grow linearly for the lifetime of the service.
/// Instead the accumulator keeps **exact** `count`, `mean` (via an exact
/// running sum), `min`, and `max`, and backs [`percentile`] with a
/// fixed-size log-linear histogram ([`dope_metrics::LocalHistogram`]).
/// Memory is therefore bounded by the histogram's bucket count
/// regardless of how many responses are recorded.
///
/// The trade-off is on quantiles only: any value returned by
/// [`percentile`] is within
/// [`dope_metrics::QUANTILE_RELATIVE_ERROR`] (= 1/32 ≈ 3.125 %
/// relative error) of the true *exceedance-rank* sample percentile —
/// the smallest recorded value with strictly more than a `q` fraction
/// of samples at or below it (rank `⌊q·n⌋ + 1`, clamped to `n`) —
/// clamped to the exact observed `[min, max]` (so
/// `percentile(1.0) == max()` exactly). The exceedance convention
/// means a tail quantile such as p99 of 100 samples reports the worst
/// sample rather than hiding the single outlier. Samples are quantized
/// to nanoseconds on recording, adding at most 1 ns of absolute error.
///
/// [`percentile`]: ResponseStats::percentile
///
/// # Example
///
/// ```
/// use dope_metrics::QUANTILE_RELATIVE_ERROR;
/// use dope_workload::ResponseStats;
///
/// let mut stats = ResponseStats::new();
/// for t in [1.0, 2.0, 3.0, 10.0] {
///     stats.record(t);
/// }
/// assert_eq!(stats.count(), 4);
/// assert_eq!(stats.mean(), Some(4.0));
/// // Exceedance rank: floor(0.5 * 4) + 1 = 3rd sample => 3.0.
/// let p50 = stats.percentile(0.5).unwrap();
/// assert!((p50 - 3.0).abs() / 3.0 <= QUANTILE_RELATIVE_ERROR + 1e-9);
/// assert_eq!(stats.max(), Some(10.0));
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ResponseStats {
    hist: LocalHistogram,
    /// Exact running sum of recorded seconds (the histogram's own sum is
    /// nanosecond-quantized; this keeps `mean` exact).
    sum_secs: f64,
    /// Exact smallest recorded value (`f64::INFINITY` when empty).
    min_secs: f64,
    /// Exact largest recorded value.
    max_secs: f64,
}

impl Default for ResponseStats {
    fn default() -> Self {
        ResponseStats::new()
    }
}

impl ResponseStats {
    /// An empty accumulator.
    #[must_use]
    pub fn new() -> Self {
        ResponseStats {
            hist: LocalHistogram::new(),
            sum_secs: 0.0,
            min_secs: f64::INFINITY,
            max_secs: 0.0,
        }
    }

    /// Records one response time in seconds.
    ///
    /// # Panics
    ///
    /// Panics if `secs` is negative or not finite.
    pub fn record(&mut self, secs: f64) {
        assert!(
            secs.is_finite() && secs >= 0.0,
            "response time must be non-negative, got {secs}"
        );
        self.hist.record_secs(secs);
        self.sum_secs += secs;
        self.min_secs = self.min_secs.min(secs);
        self.max_secs = self.max_secs.max(secs);
    }

    /// Number of recorded responses.
    #[must_use]
    pub fn count(&self) -> usize {
        usize::try_from(self.hist.count()).unwrap_or(usize::MAX)
    }

    /// Mean response time (exact), or `None` if empty.
    #[must_use]
    pub fn mean(&self) -> Option<f64> {
        let n = self.hist.count();
        (n > 0).then(|| self.sum_secs / n as f64)
    }

    /// The `q`-th percentile (`q` in `[0, 1]`), or `None` if empty.
    ///
    /// Backed by the bounded histogram: the result is within
    /// [`dope_metrics::QUANTILE_RELATIVE_ERROR`] of the true
    /// exceedance-rank sample percentile (rank `floor(q * n) + 1`,
    /// clamped to `n`), clamped to the exact observed `[min, max]`.
    ///
    /// # Panics
    ///
    /// Panics if `q` is outside `[0, 1]`.
    #[must_use]
    pub fn percentile(&self, q: f64) -> Option<f64> {
        assert!((0.0..=1.0).contains(&q), "quantile must be in [0,1]");
        let approx = self.hist.quantile_secs(q)?;
        Some(approx.clamp(self.min_secs, self.max_secs))
    }

    /// Minimum response time (exact), or `None` if empty.
    #[must_use]
    pub fn min(&self) -> Option<f64> {
        (self.hist.count() > 0).then_some(self.min_secs)
    }

    /// Maximum response time (exact), or `None` if empty.
    #[must_use]
    pub fn max(&self) -> Option<f64> {
        (self.hist.count() > 0).then_some(self.max_secs)
    }

    /// The underlying bounded latency histogram.
    #[must_use]
    pub fn histogram(&self) -> &LocalHistogram {
        &self.hist
    }

    /// Merges another accumulator into this one.
    pub fn merge(&mut self, other: &ResponseStats) {
        self.hist.merge(&other.hist);
        self.sum_secs += other.sum_secs;
        self.min_secs = self.min_secs.min(other.min_secs);
        self.max_secs = self.max_secs.max(other.max_secs);
    }
}

/// Measures throughput as completions over elapsed time, with windowed
/// rates for time-series plots (paper Figures 13 and 14).
///
/// # Example
///
/// ```
/// use dope_workload::ThroughputMeter;
///
/// let mut meter = ThroughputMeter::new();
/// meter.record(1.0);
/// meter.record(2.0);
/// meter.record(3.0);
/// assert_eq!(meter.completed(), 3);
/// assert!((meter.overall(4.0) - 0.75).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct ThroughputMeter {
    completions: Vec<f64>,
}

impl ThroughputMeter {
    /// An empty meter.
    #[must_use]
    pub fn new() -> Self {
        ThroughputMeter::default()
    }

    /// Records a completion at time `at_secs`.
    pub fn record(&mut self, at_secs: f64) {
        self.completions.push(at_secs);
    }

    /// Total completions.
    #[must_use]
    pub fn completed(&self) -> u64 {
        self.completions.len() as u64
    }

    /// Overall throughput over `horizon_secs` (completions / horizon).
    #[must_use]
    pub fn overall(&self, horizon_secs: f64) -> f64 {
        if horizon_secs <= 0.0 {
            return 0.0;
        }
        self.completions.len() as f64 / horizon_secs
    }

    /// Throughput within `[from_secs, to_secs)`.
    #[must_use]
    pub fn windowed(&self, from_secs: f64, to_secs: f64) -> f64 {
        if to_secs <= from_secs {
            return 0.0;
        }
        let n = self
            .completions
            .iter()
            .filter(|&&t| t >= from_secs && t < to_secs)
            .count();
        n as f64 / (to_secs - from_secs)
    }

    /// Throughput series over fixed windows of `window_secs` up to
    /// `horizon_secs`, as `(window_end, rate)` pairs.
    #[must_use]
    pub fn series(&self, window_secs: f64, horizon_secs: f64) -> TimeSeries {
        let mut out = TimeSeries::new("throughput");
        if window_secs <= 0.0 {
            return out;
        }
        let mut start = 0.0;
        while start < horizon_secs {
            let end = (start + window_secs).min(horizon_secs);
            out.push(end, self.windowed(start, end));
            start += window_secs;
        }
        out
    }

    /// Completion timestamps, ascending if recorded in order.
    #[must_use]
    pub fn completions(&self) -> &[f64] {
        &self.completions
    }
}

/// A named sequence of `(time, value)` points: one plotted line.
///
/// # Example
///
/// ```
/// use dope_workload::TimeSeries;
///
/// let mut series = TimeSeries::new("power");
/// series.push(0.0, 525.0);
/// series.push(5.0, 630.0);
/// assert_eq!(series.len(), 2);
/// assert_eq!(series.last_value(), Some(630.0));
/// ```
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct TimeSeries {
    name: String,
    points: Vec<(f64, f64)>,
}

impl TimeSeries {
    /// An empty series with a display name.
    #[must_use]
    pub fn new(name: impl Into<String>) -> Self {
        TimeSeries {
            name: name.into(),
            points: Vec::new(),
        }
    }

    /// Appends a point.
    pub fn push(&mut self, time_secs: f64, value: f64) {
        self.points.push((time_secs, value));
    }

    /// The series name.
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The points, in insertion order.
    #[must_use]
    pub fn points(&self) -> &[(f64, f64)] {
        &self.points
    }

    /// Number of points.
    #[must_use]
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// `true` if no points were recorded.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// Value of the last point, if any.
    #[must_use]
    pub fn last_value(&self) -> Option<f64> {
        self.points.last().map(|&(_, v)| v)
    }

    /// Mean of values from `from_secs` onward (e.g. the stable region of
    /// Figure 13/14).
    #[must_use]
    pub fn mean_after(&self, from_secs: f64) -> Option<f64> {
        let vals: Vec<f64> = self
            .points
            .iter()
            .filter(|&&(t, _)| t >= from_secs)
            .map(|&(_, v)| v)
            .collect();
        if vals.is_empty() {
            None
        } else {
            Some(vals.iter().sum::<f64>() / vals.len() as f64)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Asserts `got` is within the histogram's quantile-error bound of
    /// the exact exceedance-rank value.
    fn assert_close(got: f64, exact: f64) {
        let tolerance = exact * dope_metrics::QUANTILE_RELATIVE_ERROR + 1e-9;
        assert!(
            (got - exact).abs() <= tolerance,
            "got {got}, want {exact} +/- {tolerance}"
        );
    }

    #[test]
    fn response_percentiles_exceedance_rank() {
        let mut s = ResponseStats::new();
        for t in [5.0, 1.0, 3.0, 2.0, 4.0] {
            s.record(t);
        }
        assert_close(s.percentile(0.0).unwrap(), 1.0);
        assert_close(s.percentile(0.5).unwrap(), 3.0);
        // Extreme percentiles clamp to the exact observed range.
        assert_eq!(s.percentile(1.0), Some(5.0));
        assert_eq!(s.min(), Some(1.0));
        assert_eq!(s.max(), Some(5.0));
    }

    #[test]
    fn response_count_mean_min_max_stay_exact() {
        let mut s = ResponseStats::new();
        // Values chosen to straddle histogram bucket boundaries.
        for t in [0.1, 0.25, 0.5, 1.0, 2.0, 4.0, 8.0] {
            s.record(t);
        }
        assert_eq!(s.count(), 7);
        assert_eq!(s.mean(), Some(15.85 / 7.0));
        assert_eq!(s.min(), Some(0.1));
        assert_eq!(s.max(), Some(8.0));
    }

    #[test]
    fn response_memory_is_bounded_under_open_load() {
        let mut s = ResponseStats::new();
        for i in 0..100_000u32 {
            s.record(f64::from(i % 977) / 1000.0);
        }
        assert_eq!(s.count(), 100_000);
        // Bucket storage is capped by the histogram layout, not by the
        // number of samples.
        assert!(s.histogram().count() == 100_000);
        assert_close(s.percentile(0.5).unwrap(), 0.488);
    }

    #[test]
    fn response_empty_is_none() {
        let s = ResponseStats::new();
        assert_eq!(s.mean(), None);
        assert_eq!(s.percentile(0.5), None);
        assert_eq!(s.min(), None);
        assert_eq!(s.max(), None);
        assert_eq!(s.count(), 0);
    }

    #[test]
    #[should_panic(expected = "response time must be non-negative")]
    fn negative_response_panics() {
        ResponseStats::new().record(-1.0);
    }

    #[test]
    fn response_merge_combines() {
        let mut a = ResponseStats::new();
        a.record(1.0);
        let mut b = ResponseStats::new();
        b.record(3.0);
        a.merge(&b);
        assert_eq!(a.mean(), Some(2.0));
    }

    #[test]
    fn windowed_throughput_counts_half_open() {
        let mut m = ThroughputMeter::new();
        for t in [0.5, 1.0, 1.5, 2.0] {
            m.record(t);
        }
        assert!((m.windowed(0.0, 1.0) - 1.0).abs() < 1e-12); // only 0.5
        assert!((m.windowed(1.0, 2.0) - 2.0).abs() < 1e-12); // 1.0 and 1.5
    }

    #[test]
    fn throughput_series_covers_horizon() {
        let mut m = ThroughputMeter::new();
        for i in 0..10 {
            m.record(f64::from(i) * 0.3);
        }
        let series = m.series(1.0, 3.0);
        assert_eq!(series.len(), 3);
        let total: f64 = series.points().iter().map(|&(_, v)| v).sum();
        assert!((total - 10.0).abs() < 1e-9);
    }

    #[test]
    fn zero_horizon_throughput_is_zero() {
        let mut m = ThroughputMeter::new();
        m.record(1.0);
        assert_eq!(m.overall(0.0), 0.0);
        assert_eq!(m.windowed(2.0, 2.0), 0.0);
    }

    #[test]
    fn time_series_mean_after() {
        let mut s = TimeSeries::new("t");
        s.push(0.0, 10.0);
        s.push(10.0, 2.0);
        s.push(20.0, 4.0);
        assert_eq!(s.mean_after(10.0), Some(3.0));
        assert_eq!(s.mean_after(100.0), None);
    }
}
