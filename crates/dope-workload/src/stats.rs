//! Measurement types behind the evaluation figures.

use serde::{Deserialize, Serialize};

/// Accumulates per-request response times (paper Equation 1's
/// `T_response`): the interval from submission to completion.
///
/// # Example
///
/// ```
/// use dope_workload::ResponseStats;
///
/// let mut stats = ResponseStats::new();
/// for t in [1.0, 2.0, 3.0, 10.0] {
///     stats.record(t);
/// }
/// assert_eq!(stats.count(), 4);
/// assert_eq!(stats.mean(), Some(4.0));
/// assert_eq!(stats.percentile(0.5), Some(2.0));
/// assert_eq!(stats.max(), Some(10.0));
/// ```
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct ResponseStats {
    samples: Vec<f64>,
}

impl ResponseStats {
    /// An empty accumulator.
    #[must_use]
    pub fn new() -> Self {
        ResponseStats::default()
    }

    /// Records one response time in seconds.
    ///
    /// # Panics
    ///
    /// Panics if `secs` is negative or not finite.
    pub fn record(&mut self, secs: f64) {
        assert!(
            secs.is_finite() && secs >= 0.0,
            "response time must be non-negative, got {secs}"
        );
        self.samples.push(secs);
    }

    /// Number of recorded responses.
    #[must_use]
    pub fn count(&self) -> usize {
        self.samples.len()
    }

    /// Mean response time, or `None` if empty.
    #[must_use]
    pub fn mean(&self) -> Option<f64> {
        if self.samples.is_empty() {
            None
        } else {
            Some(self.samples.iter().sum::<f64>() / self.samples.len() as f64)
        }
    }

    /// The `q`-th percentile (`q` in `[0, 1]`) by nearest-rank, or `None`
    /// if empty.
    ///
    /// # Panics
    ///
    /// Panics if `q` is outside `[0, 1]`.
    #[must_use]
    pub fn percentile(&self, q: f64) -> Option<f64> {
        assert!((0.0..=1.0).contains(&q), "quantile must be in [0,1]");
        if self.samples.is_empty() {
            return None;
        }
        let mut sorted = self.samples.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("samples are finite"));
        let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
        Some(sorted[rank - 1])
    }

    /// Maximum response time, or `None` if empty.
    #[must_use]
    pub fn max(&self) -> Option<f64> {
        self.samples
            .iter()
            .copied()
            .fold(None, |acc, v| Some(acc.map_or(v, |m: f64| m.max(v))))
    }

    /// All samples, in recording order.
    #[must_use]
    pub fn samples(&self) -> &[f64] {
        &self.samples
    }

    /// Merges another accumulator into this one.
    pub fn merge(&mut self, other: &ResponseStats) {
        self.samples.extend_from_slice(&other.samples);
    }
}

/// Measures throughput as completions over elapsed time, with windowed
/// rates for time-series plots (paper Figures 13 and 14).
///
/// # Example
///
/// ```
/// use dope_workload::ThroughputMeter;
///
/// let mut meter = ThroughputMeter::new();
/// meter.record(1.0);
/// meter.record(2.0);
/// meter.record(3.0);
/// assert_eq!(meter.completed(), 3);
/// assert!((meter.overall(4.0) - 0.75).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct ThroughputMeter {
    completions: Vec<f64>,
}

impl ThroughputMeter {
    /// An empty meter.
    #[must_use]
    pub fn new() -> Self {
        ThroughputMeter::default()
    }

    /// Records a completion at time `at_secs`.
    pub fn record(&mut self, at_secs: f64) {
        self.completions.push(at_secs);
    }

    /// Total completions.
    #[must_use]
    pub fn completed(&self) -> u64 {
        self.completions.len() as u64
    }

    /// Overall throughput over `horizon_secs` (completions / horizon).
    #[must_use]
    pub fn overall(&self, horizon_secs: f64) -> f64 {
        if horizon_secs <= 0.0 {
            return 0.0;
        }
        self.completions.len() as f64 / horizon_secs
    }

    /// Throughput within `[from_secs, to_secs)`.
    #[must_use]
    pub fn windowed(&self, from_secs: f64, to_secs: f64) -> f64 {
        if to_secs <= from_secs {
            return 0.0;
        }
        let n = self
            .completions
            .iter()
            .filter(|&&t| t >= from_secs && t < to_secs)
            .count();
        n as f64 / (to_secs - from_secs)
    }

    /// Throughput series over fixed windows of `window_secs` up to
    /// `horizon_secs`, as `(window_end, rate)` pairs.
    #[must_use]
    pub fn series(&self, window_secs: f64, horizon_secs: f64) -> TimeSeries {
        let mut out = TimeSeries::new("throughput");
        if window_secs <= 0.0 {
            return out;
        }
        let mut start = 0.0;
        while start < horizon_secs {
            let end = (start + window_secs).min(horizon_secs);
            out.push(end, self.windowed(start, end));
            start += window_secs;
        }
        out
    }

    /// Completion timestamps, ascending if recorded in order.
    #[must_use]
    pub fn completions(&self) -> &[f64] {
        &self.completions
    }
}

/// A named sequence of `(time, value)` points: one plotted line.
///
/// # Example
///
/// ```
/// use dope_workload::TimeSeries;
///
/// let mut series = TimeSeries::new("power");
/// series.push(0.0, 525.0);
/// series.push(5.0, 630.0);
/// assert_eq!(series.len(), 2);
/// assert_eq!(series.last_value(), Some(630.0));
/// ```
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct TimeSeries {
    name: String,
    points: Vec<(f64, f64)>,
}

impl TimeSeries {
    /// An empty series with a display name.
    #[must_use]
    pub fn new(name: impl Into<String>) -> Self {
        TimeSeries {
            name: name.into(),
            points: Vec::new(),
        }
    }

    /// Appends a point.
    pub fn push(&mut self, time_secs: f64, value: f64) {
        self.points.push((time_secs, value));
    }

    /// The series name.
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The points, in insertion order.
    #[must_use]
    pub fn points(&self) -> &[(f64, f64)] {
        &self.points
    }

    /// Number of points.
    #[must_use]
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// `true` if no points were recorded.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// Value of the last point, if any.
    #[must_use]
    pub fn last_value(&self) -> Option<f64> {
        self.points.last().map(|&(_, v)| v)
    }

    /// Mean of values from `from_secs` onward (e.g. the stable region of
    /// Figure 13/14).
    #[must_use]
    pub fn mean_after(&self, from_secs: f64) -> Option<f64> {
        let vals: Vec<f64> = self
            .points
            .iter()
            .filter(|&&(t, _)| t >= from_secs)
            .map(|&(_, v)| v)
            .collect();
        if vals.is_empty() {
            None
        } else {
            Some(vals.iter().sum::<f64>() / vals.len() as f64)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn response_percentiles_nearest_rank() {
        let mut s = ResponseStats::new();
        for t in [5.0, 1.0, 3.0, 2.0, 4.0] {
            s.record(t);
        }
        assert_eq!(s.percentile(0.0), Some(1.0));
        assert_eq!(s.percentile(0.5), Some(3.0));
        assert_eq!(s.percentile(1.0), Some(5.0));
        assert_eq!(s.max(), Some(5.0));
    }

    #[test]
    fn response_empty_is_none() {
        let s = ResponseStats::new();
        assert_eq!(s.mean(), None);
        assert_eq!(s.percentile(0.5), None);
        assert_eq!(s.max(), None);
        assert_eq!(s.count(), 0);
    }

    #[test]
    #[should_panic(expected = "response time must be non-negative")]
    fn negative_response_panics() {
        ResponseStats::new().record(-1.0);
    }

    #[test]
    fn response_merge_combines() {
        let mut a = ResponseStats::new();
        a.record(1.0);
        let mut b = ResponseStats::new();
        b.record(3.0);
        a.merge(&b);
        assert_eq!(a.mean(), Some(2.0));
    }

    #[test]
    fn windowed_throughput_counts_half_open() {
        let mut m = ThroughputMeter::new();
        for t in [0.5, 1.0, 1.5, 2.0] {
            m.record(t);
        }
        assert!((m.windowed(0.0, 1.0) - 1.0).abs() < 1e-12); // only 0.5
        assert!((m.windowed(1.0, 2.0) - 2.0).abs() < 1e-12); // 1.0 and 1.5
    }

    #[test]
    fn throughput_series_covers_horizon() {
        let mut m = ThroughputMeter::new();
        for i in 0..10 {
            m.record(f64::from(i) * 0.3);
        }
        let series = m.series(1.0, 3.0);
        assert_eq!(series.len(), 3);
        let total: f64 = series.points().iter().map(|&(_, v)| v).sum();
        assert!((total - 10.0).abs() < 1e-9);
    }

    #[test]
    fn zero_horizon_throughput_is_zero() {
        let mut m = ThroughputMeter::new();
        m.record(1.0);
        assert_eq!(m.overall(0.0), 0.0);
        assert_eq!(m.windowed(2.0, 2.0), 0.0);
    }

    #[test]
    fn time_series_mean_after() {
        let mut s = TimeSeries::new("t");
        s.push(0.0, 10.0);
        s.push(10.0, 2.0);
        s.push(20.0, 4.0);
        assert_eq!(s.mean_after(10.0), Some(3.0));
        assert_eq!(s.mean_after(100.0), None);
    }
}
