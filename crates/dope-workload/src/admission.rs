//! The bounded front door: an admission-gated work queue.
//!
//! [`AdmissionQueue`] wraps the producer/consumer queue at the
//! workload/runtime boundary with an
//! [`AdmissionPolicy`]:
//!
//! * `Open` — every offer is admitted (the historical unbounded queue);
//! * `Block` — offers block the producer while occupancy is at
//!   capacity (closed-loop backpressure: the arrival process slows, no
//!   request is lost);
//! * `Shed` — offers made at or above the high watermark are dropped
//!   immediately, **without taking the queue lock**: the shed verdict
//!   reads an atomic occupancy mirror only, so overload cannot create
//!   lock contention at the front door (the same discipline as the
//!   monitor's lock-free record path);
//! * `Deadline` — offers are stamped on admission and a request whose
//!   queue delay exceeds the budget when a worker would pick it up is
//!   dropped at dispatch instead of served.
//!
//! # Counter invariants
//!
//! For any interleaving: `offered == admitted + shed_high_water`, and
//! `shed_deadline <= admitted` (deadline drops happen *after*
//! admission, at the dispatch point). Offers rejected because the queue
//! was already closed touch no counter — they are not traffic, the run
//! is over.
//!
//! # Example
//!
//! ```
//! use dope_core::AdmissionPolicy;
//! use dope_workload::admission::{AdmissionQueue, OfferOutcome};
//!
//! let q = AdmissionQueue::new(AdmissionPolicy::Shed { high_water: 2 });
//! assert_eq!(q.offer_at("a", 0.0), OfferOutcome::Admitted);
//! assert_eq!(q.offer_at("b", 0.1), OfferOutcome::Admitted);
//! // Occupancy is at the high watermark: the next offer is shed.
//! assert_eq!(q.offer_at("c", 0.2), OfferOutcome::Shed("c"));
//! let stats = q.stats();
//! assert_eq!(stats.offered, 3);
//! assert_eq!(stats.admitted, 2);
//! assert_eq!(stats.shed_high_water, 1);
//! ```

use crate::queue::DequeueOutcome;
use dope_core::{AdmissionPolicy, AdmissionStats};
use parking_lot::{Condvar, Mutex};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// What happened to one offered request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OfferOutcome<T> {
    /// The request entered the queue (possibly after blocking).
    Admitted,
    /// The request was shed by the high-watermark policy; the item is
    /// returned so the producer can account for it.
    Shed(T),
    /// The queue was closed; the item is returned. Not counted as
    /// offered traffic.
    Closed(T),
}

#[derive(Debug)]
struct Inner<T> {
    queue: std::collections::VecDeque<(T, f64)>,
    closed: bool,
}

struct Shared<T> {
    inner: Mutex<Inner<T>>,
    /// Wakes consumers on enqueue and producers blocked by `Block`.
    cvar: Condvar,
    /// Lock-free mirror of `inner.queue.len()`, written only while the
    /// lock is held but readable without it — the shed fast path.
    occupancy: AtomicU64,
    offered: AtomicU64,
    admitted: AtomicU64,
    shed_high_water: AtomicU64,
    shed_deadline: AtomicU64,
    /// Served dispatches and their cumulative queue delay (nanoseconds),
    /// for the mean-delay stat.
    dispatched: AtomicU64,
    delay_nanos: AtomicU64,
}

/// An admission-gated FIFO work queue shared by cloning.
///
/// Methods come in two flavours: `offer`/`take` stamp time from an
/// internal monotonic clock (what live producers and workers use), and
/// `offer_at`/`take_at` accept explicit seconds (deterministic tests).
pub struct AdmissionQueue<T> {
    policy: AdmissionPolicy,
    start: Instant,
    shared: Arc<Shared<T>>,
}

impl<T> Clone for AdmissionQueue<T> {
    fn clone(&self) -> Self {
        AdmissionQueue {
            policy: self.policy,
            start: self.start,
            shared: Arc::clone(&self.shared),
        }
    }
}

impl<T> std::fmt::Debug for AdmissionQueue<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("AdmissionQueue")
            .field("policy", &self.policy)
            .field("len", &self.len())
            .field("stats", &self.stats())
            .finish()
    }
}

impl<T> AdmissionQueue<T> {
    /// An empty, open queue gated by `policy`.
    ///
    /// # Panics
    ///
    /// Panics if the policy fails
    /// [`validate`](AdmissionPolicy::validate) — construct from
    /// validated policies (the runtime builder and the simulator both
    /// validate first and surface `DV017` as an error).
    #[must_use]
    pub fn new(policy: AdmissionPolicy) -> Self {
        policy.validate().expect("admission policy must validate");
        AdmissionQueue {
            policy,
            start: Instant::now(),
            shared: Arc::new(Shared {
                inner: Mutex::new(Inner {
                    queue: std::collections::VecDeque::new(),
                    closed: false,
                }),
                cvar: Condvar::new(),
                occupancy: AtomicU64::new(0),
                offered: AtomicU64::new(0),
                admitted: AtomicU64::new(0),
                shed_high_water: AtomicU64::new(0),
                shed_deadline: AtomicU64::new(0),
                dispatched: AtomicU64::new(0),
                delay_nanos: AtomicU64::new(0),
            }),
        }
    }

    /// The policy this queue was built with.
    #[must_use]
    pub fn policy(&self) -> AdmissionPolicy {
        self.policy
    }

    /// Offers an item, stamping the current time from the internal clock.
    pub fn offer(&self, item: T) -> OfferOutcome<T> {
        self.offer_at(item, self.start.elapsed().as_secs_f64())
    }

    /// Offers an item at an explicit time (seconds on the caller's clock;
    /// the same clock must be used for `take_at`).
    ///
    /// Under `Shed`, an offer made while occupancy is at or above the
    /// high watermark returns [`OfferOutcome::Shed`] after touching only
    /// atomics — it never contends on the queue lock. Under `Block`,
    /// the call blocks while occupancy is at capacity and the queue is
    /// open.
    pub fn offer_at(&self, item: T, now_secs: f64) -> OfferOutcome<T> {
        if let AdmissionPolicy::Shed { high_water } = self.policy {
            // Lock-free shed verdict: the occupancy mirror is enough.
            // A racing dispatch may admit one extra request right at the
            // watermark; the bound is on occupancy, not a turnstile.
            if self.shared.occupancy.load(Ordering::Acquire) >= u64::from(high_water) {
                self.shared.offered.fetch_add(1, Ordering::Relaxed);
                self.shared.shed_high_water.fetch_add(1, Ordering::Relaxed);
                return OfferOutcome::Shed(item);
            }
        }
        let mut inner = self.shared.inner.lock();
        if inner.closed {
            return OfferOutcome::Closed(item);
        }
        if let AdmissionPolicy::Block { capacity } = self.policy {
            while inner.queue.len() >= capacity as usize {
                self.shared.cvar.wait(&mut inner);
                if inner.closed {
                    return OfferOutcome::Closed(item);
                }
            }
        }
        inner.queue.push_back((item, now_secs));
        self.shared
            .occupancy
            .store(inner.queue.len() as u64, Ordering::Release);
        self.shared.offered.fetch_add(1, Ordering::Relaxed);
        self.shared.admitted.fetch_add(1, Ordering::Relaxed);
        drop(inner);
        self.shared.cvar.notify_all();
        OfferOutcome::Admitted
    }

    /// Takes the next serviceable item, stamping dispatch time from the
    /// internal clock.
    pub fn take(&self, timeout: Duration) -> DequeueOutcome<T> {
        self.take_at(self.start.elapsed().as_secs_f64(), timeout)
    }

    /// Takes the next serviceable item at an explicit dispatch time.
    ///
    /// Under `Deadline`, requests whose queue delay already exceeds the
    /// budget are dropped (counted as `shed_deadline`) and the scan
    /// continues — the caller only ever sees requests still worth
    /// serving. Returns [`DequeueOutcome::Drained`] once the queue is
    /// closed and empty.
    pub fn take_at(&self, now_secs: f64, timeout: Duration) -> DequeueOutcome<T> {
        let mut inner = self.shared.inner.lock();
        loop {
            while let Some((item, stamped)) = inner.queue.pop_front() {
                self.shared
                    .occupancy
                    .store(inner.queue.len() as u64, Ordering::Release);
                let delay = (now_secs - stamped).max(0.0);
                if let AdmissionPolicy::Deadline { budget_secs } = self.policy {
                    if delay > budget_secs {
                        self.shared.shed_deadline.fetch_add(1, Ordering::Relaxed);
                        continue;
                    }
                }
                self.shared.dispatched.fetch_add(1, Ordering::Relaxed);
                self.shared
                    .delay_nanos
                    .fetch_add((delay * 1e9) as u64, Ordering::Relaxed);
                drop(inner);
                // A dispatch frees a slot: wake producers blocked by
                // `Block` (and other consumers, harmlessly).
                self.shared.cvar.notify_all();
                return DequeueOutcome::Item(item);
            }
            if inner.closed {
                return DequeueOutcome::Drained;
            }
            if self.shared.cvar.wait_for(&mut inner, timeout).timed_out() && inner.queue.is_empty()
            {
                return if inner.closed {
                    DequeueOutcome::Drained
                } else {
                    DequeueOutcome::TimedOut
                };
            }
        }
    }

    /// Closes the queue: offers are rejected, blocked producers wake
    /// with [`OfferOutcome::Closed`], consumers drain then observe
    /// [`DequeueOutcome::Drained`].
    pub fn close(&self) {
        self.shared.inner.lock().closed = true;
        self.shared.cvar.notify_all();
    }

    /// `true` once [`AdmissionQueue::close`] has been called.
    #[must_use]
    pub fn is_closed(&self) -> bool {
        self.shared.inner.lock().closed
    }

    /// Current occupancy, from the lock-free mirror.
    #[must_use]
    pub fn len(&self) -> usize {
        self.shared.occupancy.load(Ordering::Acquire) as usize
    }

    /// `true` if no items are queued.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// A consistent snapshot of the gate's cumulative counters.
    ///
    /// Lock-free; individual counters are each exact, and the
    /// documented invariants hold for any quiescent point.
    #[must_use]
    pub fn stats(&self) -> AdmissionStats {
        let dispatched = self.shared.dispatched.load(Ordering::Relaxed);
        let delay_nanos = self.shared.delay_nanos.load(Ordering::Relaxed);
        AdmissionStats {
            offered: self.shared.offered.load(Ordering::Relaxed),
            admitted: self.shared.admitted.load(Ordering::Relaxed),
            shed_high_water: self.shared.shed_high_water.load(Ordering::Relaxed),
            shed_deadline: self.shared.shed_deadline.load(Ordering::Relaxed),
            mean_queue_delay_secs: if dispatched == 0 {
                0.0
            } else {
                delay_nanos as f64 / 1e9 / dispatched as f64
            },
        }
    }

    /// A probe closure the runtime's monitor can poll for
    /// [`AdmissionStats`] without knowing the queue's item type.
    pub fn stats_probe(&self) -> impl Fn() -> AdmissionStats + Send + Sync + 'static
    where
        T: Send + 'static,
    {
        let q = self.clone();
        move || q.stats()
    }

    /// Test hook: holds the queue lock so tests can prove the shed
    /// verdict path never touches it.
    #[cfg(test)]
    fn hold_lock_for_test(&self) -> parking_lot::MutexGuard<'_, Inner<T>> {
        self.shared.inner.lock()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;

    #[test]
    fn open_policy_admits_everything() {
        let q = AdmissionQueue::new(AdmissionPolicy::Open);
        for i in 0..100 {
            assert_eq!(q.offer_at(i, 0.0), OfferOutcome::Admitted);
        }
        let stats = q.stats();
        assert_eq!(stats.offered, 100);
        assert_eq!(stats.admitted, 100);
        assert_eq!(stats.shed(), 0);
        assert_eq!(q.len(), 100);
    }

    #[test]
    fn shed_drops_above_high_water_and_counts() {
        let q = AdmissionQueue::new(AdmissionPolicy::Shed { high_water: 3 });
        for i in 0..10 {
            q.offer_at(i, 0.0);
        }
        let stats = q.stats();
        assert_eq!(stats.offered, 10);
        assert_eq!(stats.admitted, 3);
        assert_eq!(stats.shed_high_water, 7);
        assert_eq!(stats.offered, stats.admitted + stats.shed_high_water);
        // Draining re-opens the gate.
        assert!(matches!(
            q.take_at(0.1, Duration::from_millis(1)),
            DequeueOutcome::Item(0)
        ));
        assert_eq!(q.offer_at(99, 0.2), OfferOutcome::Admitted);
    }

    #[test]
    fn shed_verdict_never_touches_the_queue_lock() {
        let q = AdmissionQueue::new(AdmissionPolicy::Shed { high_water: 1 });
        assert_eq!(q.offer_at(0, 0.0), OfferOutcome::Admitted);
        // Hold the queue lock on this thread; a shed offer from another
        // thread must still return promptly (atomics only).
        let guard = q.hold_lock_for_test();
        let q2 = q.clone();
        let shedder = thread::spawn(move || q2.offer_at(1, 0.1));
        assert_eq!(shedder.join().unwrap(), OfferOutcome::Shed(1));
        drop(guard);
    }

    #[test]
    fn block_policy_throttles_the_producer() {
        let q = AdmissionQueue::new(AdmissionPolicy::Block { capacity: 2 });
        assert_eq!(q.offer_at("a", 0.0), OfferOutcome::Admitted);
        assert_eq!(q.offer_at("b", 0.0), OfferOutcome::Admitted);
        let q2 = q.clone();
        let producer = thread::spawn(move || q2.offer_at("c", 0.1));
        // The producer is blocked at capacity; a dispatch releases it.
        thread::sleep(Duration::from_millis(20));
        assert_eq!(q.len(), 2);
        assert!(matches!(
            q.take_at(0.2, Duration::from_millis(1)),
            DequeueOutcome::Item("a")
        ));
        assert_eq!(producer.join().unwrap(), OfferOutcome::Admitted);
        let stats = q.stats();
        assert_eq!(stats.offered, 3);
        assert_eq!(stats.admitted, 3);
        assert_eq!(stats.shed(), 0);
    }

    #[test]
    fn block_producer_wakes_closed_on_close() {
        let q = AdmissionQueue::new(AdmissionPolicy::Block { capacity: 1 });
        assert_eq!(q.offer_at(1, 0.0), OfferOutcome::Admitted);
        let q2 = q.clone();
        let producer = thread::spawn(move || q2.offer_at(2, 0.1));
        thread::sleep(Duration::from_millis(10));
        q.close();
        assert_eq!(producer.join().unwrap(), OfferOutcome::Closed(2));
    }

    #[test]
    fn deadline_drops_stale_requests_at_dispatch() {
        let q = AdmissionQueue::new(AdmissionPolicy::Deadline { budget_secs: 0.5 });
        q.offer_at("stale", 0.0);
        q.offer_at("fresh", 1.0);
        // At t=1.2 the first request is 1.2s old (> 0.5 budget): dropped;
        // the second is 0.2s old: served.
        assert!(matches!(
            q.take_at(1.2, Duration::from_millis(1)),
            DequeueOutcome::Item("fresh")
        ));
        let stats = q.stats();
        assert_eq!(stats.offered, 2);
        assert_eq!(stats.admitted, 2);
        assert_eq!(stats.shed_deadline, 1);
        assert!((stats.mean_queue_delay_secs - 0.2).abs() < 1e-9);
    }

    #[test]
    fn deadline_drain_sheds_residual_stale_items() {
        let q = AdmissionQueue::new(AdmissionPolicy::Deadline { budget_secs: 0.1 });
        q.offer_at(1, 0.0);
        q.offer_at(2, 0.0);
        q.close();
        assert_eq!(
            q.take_at(5.0, Duration::from_millis(1)),
            DequeueOutcome::Drained
        );
        assert_eq!(q.stats().shed_deadline, 2);
    }

    #[test]
    fn closed_offers_touch_no_counters() {
        let q = AdmissionQueue::new(AdmissionPolicy::Open);
        q.close();
        assert_eq!(q.offer_at(7, 0.0), OfferOutcome::Closed(7));
        assert_eq!(q.stats().offered, 0);
    }

    #[test]
    fn take_blocks_until_offer_and_drains_on_close() {
        let q = AdmissionQueue::new(AdmissionPolicy::Open);
        let q2 = q.clone();
        let consumer = thread::spawn(move || q2.take(Duration::from_secs(5)));
        thread::sleep(Duration::from_millis(10));
        q.offer(42u32);
        assert!(matches!(consumer.join().unwrap(), DequeueOutcome::Item(42)));
        let q3 = q.clone();
        let consumer = thread::spawn(move || q3.take(Duration::from_secs(5)));
        thread::sleep(Duration::from_millis(10));
        q.close();
        assert_eq!(consumer.join().unwrap(), DequeueOutcome::Drained);
    }

    #[test]
    fn conservation_holds_under_concurrent_offer_storm() {
        let q = AdmissionQueue::new(AdmissionPolicy::Shed { high_water: 8 });
        let consumer = {
            let q = q.clone();
            thread::spawn(move || {
                let mut served = 0u64;
                loop {
                    match q.take(Duration::from_millis(5)) {
                        DequeueOutcome::Item(_) => served += 1,
                        DequeueOutcome::Drained => return served,
                        DequeueOutcome::TimedOut => {}
                    }
                }
            })
        };
        let producers: Vec<_> = (0..4)
            .map(|p| {
                let q = q.clone();
                thread::spawn(move || {
                    for i in 0..500 {
                        q.offer(p * 500 + i);
                    }
                })
            })
            .collect();
        for p in producers {
            p.join().unwrap();
        }
        q.close();
        let served = consumer.join().unwrap();
        let stats = q.stats();
        assert_eq!(stats.offered, 2000);
        assert_eq!(stats.offered, stats.admitted + stats.shed_high_water);
        assert_eq!(stats.admitted, served);
    }

    #[test]
    fn stats_probe_reflects_traffic() {
        let q = AdmissionQueue::new(AdmissionPolicy::Open);
        let probe = q.stats_probe();
        q.offer_at(1, 0.0);
        assert_eq!(probe().admitted, 1);
    }
}
