//! Instrumented, closeable work queues.
//!
//! Queues connect pipeline stages and carry the open workload into the
//! application. They support the drain idiom the paper's `FiniCB`
//! callbacks implement with sentinel tokens: *closing* a queue lets
//! consumers keep dequeuing until it is empty, after which they observe
//! [`DequeueOutcome::Drained`] and terminate — steering the nest into a
//! globally consistent state.

use parking_lot::{Condvar, Mutex};
use std::collections::VecDeque;
use std::sync::Arc;
use std::time::Duration;

/// Result of a timed dequeue.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DequeueOutcome<T> {
    /// An item was dequeued.
    Item(T),
    /// The timeout elapsed with the queue open but empty.
    TimedOut,
    /// The queue is closed and empty; no item will ever arrive.
    Drained,
}

impl<T> DequeueOutcome<T> {
    /// The item, if one was dequeued.
    pub fn item(self) -> Option<T> {
        match self {
            DequeueOutcome::Item(item) => Some(item),
            _ => None,
        }
    }
}

#[derive(Debug)]
struct Inner<T> {
    queue: VecDeque<T>,
    closed: bool,
    enqueued: u64,
    dequeued: u64,
}

/// A thread-safe FIFO work queue shared by cloning.
///
/// Clones share the same queue. Occupancy and cumulative counters feed the
/// paper's `LoadCB` callbacks and the executive's monitor.
///
/// # Example
///
/// ```
/// use dope_workload::{DequeueOutcome, WorkQueue};
/// use std::time::Duration;
///
/// let q = WorkQueue::new();
/// q.enqueue("frame");
/// assert_eq!(q.len(), 1);
/// assert_eq!(q.try_dequeue(), Some("frame"));
/// q.close();
/// assert_eq!(
///     q.dequeue_timeout(Duration::from_millis(1)),
///     DequeueOutcome::Drained,
/// );
/// ```
pub struct WorkQueue<T> {
    inner: Arc<(Mutex<Inner<T>>, Condvar)>,
}

impl<T> Clone for WorkQueue<T> {
    fn clone(&self) -> Self {
        WorkQueue {
            inner: Arc::clone(&self.inner),
        }
    }
}

impl<T> std::fmt::Debug for WorkQueue<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let guard = self.inner.0.lock();
        f.debug_struct("WorkQueue")
            .field("len", &guard.queue.len())
            .field("closed", &guard.closed)
            .field("enqueued", &guard.enqueued)
            .field("dequeued", &guard.dequeued)
            .finish()
    }
}

impl<T> Default for WorkQueue<T> {
    fn default() -> Self {
        WorkQueue::new()
    }
}

impl<T> WorkQueue<T> {
    /// An empty, open queue.
    #[must_use]
    pub fn new() -> Self {
        WorkQueue {
            inner: Arc::new((
                Mutex::new(Inner {
                    queue: VecDeque::new(),
                    closed: false,
                    enqueued: 0,
                    dequeued: 0,
                }),
                Condvar::new(),
            )),
        }
    }

    /// Enqueues an item. Returns `false` (dropping nothing — the item is
    /// returned to the caller via `Err`) if the queue is closed.
    ///
    /// # Errors
    ///
    /// Returns the item back if the queue is closed.
    pub fn enqueue(&self, item: T) -> Result<(), T> {
        let (lock, cvar) = &*self.inner;
        let mut inner = lock.lock();
        if inner.closed {
            return Err(item);
        }
        inner.queue.push_back(item);
        inner.enqueued += 1;
        drop(inner);
        cvar.notify_one();
        Ok(())
    }

    /// Dequeues without blocking.
    pub fn try_dequeue(&self) -> Option<T> {
        let (lock, _) = &*self.inner;
        let mut inner = lock.lock();
        let item = inner.queue.pop_front();
        if item.is_some() {
            inner.dequeued += 1;
        }
        item
    }

    /// Dequeues, waiting up to `timeout` for an item.
    ///
    /// Returns [`DequeueOutcome::Drained`] once the queue is closed *and*
    /// empty, so consumers drain residual items before terminating.
    pub fn dequeue_timeout(&self, timeout: Duration) -> DequeueOutcome<T> {
        let (lock, cvar) = &*self.inner;
        let mut inner = lock.lock();
        loop {
            if let Some(item) = inner.queue.pop_front() {
                inner.dequeued += 1;
                return DequeueOutcome::Item(item);
            }
            if inner.closed {
                return DequeueOutcome::Drained;
            }
            if cvar.wait_for(&mut inner, timeout).timed_out() {
                return match inner.queue.pop_front() {
                    Some(item) => {
                        inner.dequeued += 1;
                        DequeueOutcome::Item(item)
                    }
                    None if inner.closed => DequeueOutcome::Drained,
                    None => DequeueOutcome::TimedOut,
                };
            }
        }
    }

    /// Dequeues, blocking until an item arrives or the queue drains.
    ///
    /// Returns `None` once the queue is closed and empty.
    pub fn dequeue(&self) -> Option<T> {
        loop {
            match self.dequeue_timeout(Duration::from_millis(50)) {
                DequeueOutcome::Item(item) => return Some(item),
                DequeueOutcome::Drained => return None,
                DequeueOutcome::TimedOut => {}
            }
        }
    }

    /// Closes the queue: no further enqueues; consumers drain then stop.
    pub fn close(&self) {
        let (lock, cvar) = &*self.inner;
        lock.lock().closed = true;
        cvar.notify_all();
    }

    /// `true` once [`WorkQueue::close`] has been called.
    #[must_use]
    pub fn is_closed(&self) -> bool {
        self.inner.0.lock().closed
    }

    /// Current occupancy.
    #[must_use]
    pub fn len(&self) -> usize {
        self.inner.0.lock().queue.len()
    }

    /// `true` if no items are queued.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Current occupancy as a float — the shape `LoadCB` callbacks return.
    #[must_use]
    pub fn occupancy(&self) -> f64 {
        self.len() as f64
    }

    /// Items enqueued since creation.
    #[must_use]
    pub fn total_enqueued(&self) -> u64 {
        self.inner.0.lock().enqueued
    }

    /// Items dequeued since creation.
    #[must_use]
    pub fn total_dequeued(&self) -> u64 {
        self.inner.0.lock().dequeued
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;

    #[test]
    fn fifo_order() {
        let q = WorkQueue::new();
        for i in 0..5 {
            q.enqueue(i).unwrap();
        }
        let drained: Vec<i32> = std::iter::from_fn(|| q.try_dequeue()).collect();
        assert_eq!(drained, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn counters_track_traffic() {
        let q = WorkQueue::new();
        q.enqueue(1).unwrap();
        q.enqueue(2).unwrap();
        let _ = q.try_dequeue();
        assert_eq!(q.total_enqueued(), 2);
        assert_eq!(q.total_dequeued(), 1);
        assert_eq!(q.len(), 1);
        assert_eq!(q.occupancy(), 1.0);
    }

    #[test]
    fn enqueue_after_close_returns_item() {
        let q = WorkQueue::new();
        q.close();
        assert_eq!(q.enqueue(9), Err(9));
    }

    #[test]
    fn drain_after_close_yields_residual_items() {
        let q = WorkQueue::new();
        q.enqueue("a").unwrap();
        q.close();
        assert_eq!(
            q.dequeue_timeout(Duration::from_millis(1)),
            DequeueOutcome::Item("a")
        );
        assert_eq!(
            q.dequeue_timeout(Duration::from_millis(1)),
            DequeueOutcome::Drained
        );
    }

    #[test]
    fn timeout_on_open_empty_queue() {
        let q: WorkQueue<u8> = WorkQueue::new();
        assert_eq!(
            q.dequeue_timeout(Duration::from_millis(1)),
            DequeueOutcome::TimedOut
        );
    }

    #[test]
    fn blocking_dequeue_wakes_on_enqueue() {
        let q = WorkQueue::new();
        let q2 = q.clone();
        let consumer = thread::spawn(move || q2.dequeue());
        thread::sleep(Duration::from_millis(10));
        q.enqueue(42u32).unwrap();
        assert_eq!(consumer.join().unwrap(), Some(42));
    }

    #[test]
    fn blocking_dequeue_returns_none_when_drained() {
        let q: WorkQueue<u8> = WorkQueue::new();
        let q2 = q.clone();
        let consumer = thread::spawn(move || q2.dequeue());
        thread::sleep(Duration::from_millis(5));
        q.close();
        assert_eq!(consumer.join().unwrap(), None);
    }

    #[test]
    fn clones_share_state() {
        let q = WorkQueue::new();
        let q2 = q.clone();
        q.enqueue(1).unwrap();
        assert_eq!(q2.len(), 1);
        q2.close();
        assert!(q.is_closed());
    }

    #[test]
    fn many_producers_one_consumer() {
        let q = WorkQueue::new();
        let producers: Vec<_> = (0..4)
            .map(|p| {
                let q = q.clone();
                thread::spawn(move || {
                    for i in 0..100 {
                        q.enqueue(p * 100 + i).unwrap();
                    }
                })
            })
            .collect();
        for p in producers {
            p.join().unwrap();
        }
        q.close();
        let mut got = Vec::new();
        while let Some(v) = q.dequeue() {
            got.push(v);
        }
        assert_eq!(got.len(), 400);
        assert_eq!(q.total_dequeued(), 400);
    }

    #[test]
    fn outcome_item_accessor() {
        assert_eq!(DequeueOutcome::Item(3).item(), Some(3));
        assert_eq!(DequeueOutcome::<i32>::TimedOut.item(), None);
        assert_eq!(DequeueOutcome::<i32>::Drained.item(), None);
    }
}
