//! Contract tests: every mechanism must propose configurations that
//! validate against the shape and thread budget, whatever the monitoring
//! data looks like.

use dope_core::{
    Config, Mechanism, MonitorSnapshot, ProgramShape, Resources, ShapeNode, TaskConfig, TaskKind,
    TaskPath, TaskStats,
};
use dope_mechanisms::{Fdp, Oracle, Proportional, Seda, Tbf, Tpc, WqLinear, WqtH};
use proptest::prelude::*;

fn pipeline_shape() -> ProgramShape {
    ProgramShape::new(vec![ShapeNode {
        name: "pipe".into(),
        kind: TaskKind::Par,
        max_extent: Some(1),
        alternatives: vec![
            vec![
                ShapeNode::leaf("in", TaskKind::Seq),
                ShapeNode::leaf("a", TaskKind::Par),
                ShapeNode::leaf("b", TaskKind::Par),
                ShapeNode::leaf("out", TaskKind::Seq),
            ],
            vec![
                ShapeNode::leaf("in", TaskKind::Seq),
                ShapeNode::leaf("fused", TaskKind::Par),
                ShapeNode::leaf("out", TaskKind::Seq),
            ],
        ],
    }])
}

fn two_level_shape() -> ProgramShape {
    ProgramShape::new(vec![ShapeNode {
        name: "txn".into(),
        kind: TaskKind::Par,
        max_extent: None,
        alternatives: vec![
            vec![
                ShapeNode::leaf("read", TaskKind::Seq),
                ShapeNode::leaf("work", TaskKind::Par),
            ],
            vec![ShapeNode::leaf("whole", TaskKind::Seq)],
        ],
    }])
}

fn pipeline_config(extents: &[u32]) -> Config {
    Config::new(vec![TaskConfig::nest(
        "pipe",
        1,
        0,
        extents
            .iter()
            .zip(["in", "a", "b", "out"])
            .map(|(&e, n)| TaskConfig::leaf(n, e))
            .collect(),
    )])
}

fn snapshot(
    execs: &[f64],
    loads: &[f64],
    queue_occupancy: f64,
    power: Option<f64>,
    dispatches: u64,
) -> MonitorSnapshot {
    let mut snap = MonitorSnapshot::at(1.0);
    for (i, (&e, &l)) in execs.iter().zip(loads).enumerate() {
        snap.tasks.insert(
            TaskPath::root_child(0).child(i as u16),
            TaskStats {
                invocations: 100,
                mean_exec_secs: e,
                throughput: if e > 0.0 { 1.0 / e } else { 0.0 },
                load: l,
                utilization: 0.7,
                ..TaskStats::default()
            },
        );
    }
    snap.queue.occupancy = queue_occupancy;
    snap.power_watts = power;
    snap.dispatches_since_reconfig = dispatches;
    snap
}

/// Drives one mechanism for several steps and checks every proposal.
fn check_contract(
    mech: &mut dyn Mechanism,
    shape: &ProgramShape,
    initial: Config,
    threads: u32,
    snaps: &[MonitorSnapshot],
) -> Result<(), TestCaseError> {
    let res = Resources::threads(threads).with_power_budget(630.0);
    let mut current = mech
        .initial(shape, &res)
        .filter(|c| c.validate(shape, threads).is_ok())
        .unwrap_or(initial);
    for snap in snaps {
        if let Some(proposal) = mech.reconfigure(snap, &current, shape, &res) {
            prop_assert!(
                proposal.validate(shape, threads).is_ok(),
                "{} proposed invalid config {proposal}",
                mech.name()
            );
            current = proposal;
            mech.applied(&current);
        }
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn pipeline_mechanisms_never_break_the_budget(
        execs in prop::collection::vec(1e-4f64..0.1, 4),
        loads in prop::collection::vec(0.0f64..64.0, 4),
        threads in 4u32..33,
        power in prop::option::of(400.0f64..800.0),
        steps in 1usize..12,
    ) {
        let shape = pipeline_shape();
        let initial = pipeline_config(&[1, 1, 1, 1]);
        let snaps: Vec<MonitorSnapshot> = (0..steps)
            .map(|i| snapshot(&execs, &loads, loads[0], power, i as u64))
            .collect();

        let mut mechanisms: Vec<Box<dyn Mechanism>> = vec![
            Box::new(Proportional::new()),
            Box::new(Tbf::new()),
            Box::new(Tbf::without_fusion()),
            Box::new(Fdp::default()),
            Box::new(Tpc::default()),
        ];
        for mech in &mut mechanisms {
            check_contract(mech.as_mut(), &shape, initial.clone(), threads, &snaps)?;
        }
    }

    /// SEDA is exempt from the budget (it is uncoordinated by design) but
    /// must still match the shape and keep extents positive.
    #[test]
    fn seda_stays_shape_valid(
        loads in prop::collection::vec(0.0f64..64.0, 4),
        steps in 1usize..12,
    ) {
        let shape = pipeline_shape();
        let res = Resources::threads(24);
        let mut current = pipeline_config(&[1, 2, 2, 1]);
        let mut seda = Seda::default();
        for i in 0..steps {
            let snap = snapshot(&[0.01, 0.01, 0.01, 0.01], &loads, 0.0, None, i as u64);
            if let Some(p) = seda.reconfigure(&snap, &current, &shape, &res) {
                prop_assert!(p.validate(&shape, u32::MAX).is_ok());
                current = p;
            }
        }
    }

    #[test]
    fn two_level_mechanisms_never_break_the_budget(
        occupancies in prop::collection::vec(0.0f64..64.0, 1..16),
        threads in 2u32..33,
        m_max in 2u32..12,
    ) {
        let shape = two_level_shape();
        let initial = dope_core::nest::config_for_width(
            &shape,
            &dope_core::nest::find_two_level(&shape).expect("two-level"),
            threads,
            1,
        );
        let snaps: Vec<MonitorSnapshot> = occupancies
            .iter()
            .enumerate()
            .map(|(i, &occ)| snapshot(&[0.01], &[occ], occ, None, i as u64 + 1))
            .collect();

        let mut mechanisms: Vec<Box<dyn Mechanism>> = vec![
            Box::new(WqtH::new(4.0, m_max, 2, 2)),
            Box::new(WqLinear::new(1, m_max, 8.0)),
            Box::new(Oracle::from_table(vec![(2.0, m_max), (8.0, 2)], 1)),
        ];
        for mech in &mut mechanisms {
            check_contract(mech.as_mut(), &shape, initial.clone(), threads, &snaps)?;
        }
    }
}
