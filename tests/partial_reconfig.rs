//! End-to-end partial (delta) reconfiguration: an extents-only change
//! on a top-level leaf drains *only* that path — replicas of untouched
//! paths run straight through the epoch boundary — while structural or
//! disabled-delta transitions still take the classic full drain.

use dope_core::{
    body_fn, Config, Goal, Mechanism, MonitorSnapshot, ProgramShape, Resources, TaskBody,
    TaskConfig, TaskCx, TaskKind, TaskSpec, TaskStatus, WorkerSlot,
};
use dope_metrics::MetricsRegistry;
use dope_runtime::Dope;
use dope_trace::{Recorder, TraceEvent};
use dope_workload::{DequeueOutcome, WorkQueue};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Pins a starting configuration, proposes one target at the first
/// consult, then holds.
struct OneBump {
    fired: bool,
    start: Config,
    target: Config,
}

impl Mechanism for OneBump {
    fn name(&self) -> &'static str {
        "OneBump"
    }
    fn initial(&mut self, _shape: &ProgramShape, _res: &Resources) -> Option<Config> {
        Some(self.start.clone())
    }
    fn reconfigure(
        &mut self,
        _snap: &MonitorSnapshot,
        _current: &Config,
        _shape: &ProgramShape,
        _res: &Resources,
    ) -> Option<Config> {
        if self.fired {
            None
        } else {
            self.fired = true;
            Some(self.target.clone())
        }
    }
}

/// A leaf draining its own queue at a fixed per-item cost, honoring the
/// suspend directive after every item, counting factory invocations so
/// the test can tell which paths were relaunched.
fn counted_drain_spec(
    name: &'static str,
    queue: WorkQueue<u64>,
    work: Duration,
    factory_calls: Arc<AtomicU64>,
    hits: Arc<AtomicU64>,
) -> TaskSpec {
    TaskSpec::leaf(name, TaskKind::Par, move |_slot: WorkerSlot| {
        factory_calls.fetch_add(1, Ordering::SeqCst);
        let queue = queue.clone();
        let hits = Arc::clone(&hits);
        Box::new(body_fn(move |cx: &mut dyn TaskCx| {
            cx.begin();
            let outcome = queue.dequeue_timeout(Duration::from_millis(2));
            cx.end();
            match outcome {
                DequeueOutcome::Item(_) => {
                    hits.fetch_add(1, Ordering::Relaxed);
                    std::thread::sleep(work);
                    if cx.directive().wants_suspend() {
                        TaskStatus::Suspended
                    } else {
                        TaskStatus::Executing
                    }
                }
                DequeueOutcome::Drained => TaskStatus::Finished,
                DequeueOutcome::TimedOut => {
                    if cx.directive().wants_suspend() {
                        TaskStatus::Suspended
                    } else {
                        TaskStatus::Executing
                    }
                }
            }
        })) as Box<dyn TaskBody>
    })
}

fn counter_value(render: &str, metric: &str) -> Option<f64> {
    render
        .lines()
        .find(|l| l.starts_with(metric) && !l.starts_with('#'))
        .and_then(|l| l.split_whitespace().last())
        .and_then(|v| v.parse().ok())
}

fn closed_queue(items: u64) -> WorkQueue<u64> {
    let queue = WorkQueue::new();
    for i in 0..items {
        queue.enqueue(i).unwrap();
    }
    queue.close();
    queue
}

/// Tentpole acceptance: bumping the fast leaf's extent drains only that
/// path. The slow leaf's replica is instantiated exactly once — it runs
/// across the boundary — while the fast leaf is rebuilt at the new
/// extent; the `ReconfigureEpoch` record says `scope: "partial"` with
/// one path drained, and the partial counter metric fires.
#[test]
fn partial_reconfig_keeps_untouched_paths_running() {
    let fast_queue = closed_queue(200);
    let slow_queue = closed_queue(25);
    let fast_factory = Arc::new(AtomicU64::new(0));
    let slow_factory = Arc::new(AtomicU64::new(0));
    let fast_hits = Arc::new(AtomicU64::new(0));
    let slow_hits = Arc::new(AtomicU64::new(0));
    let specs = vec![
        counted_drain_spec(
            "fast",
            fast_queue,
            Duration::from_millis(1),
            Arc::clone(&fast_factory),
            Arc::clone(&fast_hits),
        ),
        counted_drain_spec(
            "slow",
            slow_queue,
            Duration::from_millis(10),
            Arc::clone(&slow_factory),
            Arc::clone(&slow_hits),
        ),
    ];
    let start = Config::new(vec![
        TaskConfig::leaf("fast", 1),
        TaskConfig::leaf("slow", 1),
    ]);
    let target = Config::new(vec![
        TaskConfig::leaf("fast", 2),
        TaskConfig::leaf("slow", 1),
    ]);
    let registry = MetricsRegistry::new();
    let recorder = Recorder::bounded(8192);
    let dope = Dope::builder(Goal::MaxThroughput { threads: 3 })
        .mechanism(Box::new(OneBump {
            fired: false,
            start,
            target: target.clone(),
        }))
        .control_period(Duration::from_millis(10))
        .metrics(registry.clone())
        .recorder(recorder.clone())
        .launch(specs)
        .expect("launch");
    let report = dope.wait().expect("completes");

    assert_eq!(fast_hits.load(Ordering::Relaxed), 200, "fast items drained");
    assert_eq!(slow_hits.load(Ordering::Relaxed), 25, "slow items drained");
    assert_eq!(report.reconfigurations, 1);
    assert_eq!(report.final_config, target);
    assert_eq!(
        slow_factory.load(Ordering::SeqCst),
        1,
        "the untouched path's replica must run through the boundary, not relaunch"
    );
    assert_eq!(
        fast_factory.load(Ordering::SeqCst),
        3,
        "the changed path relaunches at the new extent (1 initial + 2 relaunched)"
    );

    let epochs: Vec<(String, u64)> = recorder
        .records()
        .iter()
        .filter_map(|r| match &r.event {
            TraceEvent::ReconfigureEpoch {
                scope,
                paths_drained,
                ..
            } => Some((scope.clone(), *paths_drained)),
            _ => None,
        })
        .collect();
    assert_eq!(
        epochs,
        vec![("partial".to_string(), 1)],
        "exactly one boundary, delta-scoped, one path drained"
    );

    let render = registry.render();
    assert_eq!(
        counter_value(&render, "dope_reconfig_partial_total"),
        Some(1.0),
        "partial counter fires once:\n{render}"
    );
    assert!(
        render.contains("dope_reconfig_paths_drained"),
        "paths-drained histogram registered:\n{render}"
    );
}

/// The same transition with delta reconfiguration disabled takes the
/// classic full drain: every path pauses and relaunches, and the trace
/// says so.
#[test]
fn disabling_delta_falls_back_to_the_full_drain() {
    let fast_queue = closed_queue(120);
    let slow_queue = closed_queue(15);
    let fast_factory = Arc::new(AtomicU64::new(0));
    let slow_factory = Arc::new(AtomicU64::new(0));
    let fast_hits = Arc::new(AtomicU64::new(0));
    let slow_hits = Arc::new(AtomicU64::new(0));
    let specs = vec![
        counted_drain_spec(
            "fast",
            fast_queue,
            Duration::from_millis(1),
            Arc::clone(&fast_factory),
            Arc::clone(&fast_hits),
        ),
        counted_drain_spec(
            "slow",
            slow_queue,
            Duration::from_millis(8),
            Arc::clone(&slow_factory),
            Arc::clone(&slow_hits),
        ),
    ];
    let start = Config::new(vec![
        TaskConfig::leaf("fast", 1),
        TaskConfig::leaf("slow", 1),
    ]);
    let target = Config::new(vec![
        TaskConfig::leaf("fast", 2),
        TaskConfig::leaf("slow", 1),
    ]);
    let recorder = Recorder::bounded(8192);
    let dope = Dope::builder(Goal::MaxThroughput { threads: 3 })
        .mechanism(Box::new(OneBump {
            fired: false,
            start,
            target: target.clone(),
        }))
        .control_period(Duration::from_millis(10))
        .delta_reconfig(false)
        .recorder(recorder.clone())
        .launch(specs)
        .expect("launch");
    let report = dope.wait().expect("completes");

    assert_eq!(fast_hits.load(Ordering::Relaxed), 120);
    assert_eq!(slow_hits.load(Ordering::Relaxed), 15);
    assert_eq!(report.reconfigurations, 1);
    assert_eq!(report.final_config, target);
    assert!(
        slow_factory.load(Ordering::SeqCst) >= 2,
        "a full drain rebuilds the untouched path too"
    );
    let scopes: Vec<String> = recorder
        .records()
        .iter()
        .filter_map(|r| match &r.event {
            TraceEvent::ReconfigureEpoch { scope, .. } => Some(scope.clone()),
            _ => None,
        })
        .collect();
    assert_eq!(scopes, vec!["full".to_string()]);
}
