//! End-to-end tests of the live DoPE runtime driving the paper's
//! applications with the paper's mechanisms.

use dope_apps::kernels::search::Corpus;
use dope_apps::{dedup, ferret, swaptions, transcode};
use dope_core::Goal;
use dope_mechanisms::{for_goal, Tbf, WqLinear, WqtH};
use dope_runtime::Dope;
use std::sync::Arc;
use std::time::Duration;

#[test]
fn transcoding_service_adapts_and_conserves_work() {
    let (service, descriptor) = transcode::live_service();
    let dope = Dope::builder(Goal::MinResponseTime { threads: 4 })
        .mechanism(Box::new(WqLinear::new(1, 4, 8.0)))
        .control_period(Duration::from_millis(10))
        .queue_probe(service.queue_probe())
        .launch(descriptor)
        .expect("launch");

    let params = transcode::VideoParams {
        frames: 4,
        width: 32,
        height: 32,
    };
    // Light phase, then a burst that must push WQ-Linear to narrow widths.
    for id in 0..8u64 {
        service
            .queue
            .enqueue(transcode::make_video(id, params))
            .unwrap();
        std::thread::sleep(Duration::from_millis(25));
    }
    for id in 8..48u64 {
        service
            .queue
            .enqueue(transcode::make_video(id, params))
            .unwrap();
    }
    service.queue.close();
    let report = dope.wait().expect("drains");

    assert_eq!(service.stats.completed(), 48, "every video transcoded");
    assert_eq!(service.stats.response().count(), 48);
    assert!(
        report.reconfigurations >= 1,
        "the burst must trigger at least one reconfiguration"
    );
}

#[test]
fn ferret_conserves_queries_across_reconfigurations() {
    let corpus = Arc::new(Corpus::synthetic(1500, 3));
    let (pipe, descriptor) = ferret::live_pipeline(corpus);
    ferret::submit_queries(&pipe, 600);
    pipe.source.close();

    let dope = Dope::builder(Goal::MaxThroughput { threads: 6 })
        .mechanism(Box::new(Tbf::new()))
        .control_period(Duration::from_millis(20))
        .queue_probe(pipe.queue_probe())
        .launch(descriptor)
        .expect("launch");
    let report = dope.wait().expect("batch completes");

    assert_eq!(
        pipe.stats.completed(),
        600,
        "no query may be lost across suspend/relaunch cycles"
    );
    // TBF balances or fuses; either way it must have acted at least once
    // (the initial even split is not balanced for ferret).
    assert!(report.reconfigurations >= 1);
}

#[test]
fn dedup_pipeline_deduplicates_under_dope() {
    let (pipe, descriptor, store) = dedup::live_pipeline();
    dedup::submit_streams(&pipe, 12, 30_000, 0.5);
    pipe.source.close();

    let dope = Dope::builder(Goal::MaxThroughput { threads: 5 })
        .mechanism(Box::new(Tbf::without_fusion()))
        .control_period(Duration::from_millis(25))
        .queue_probe(pipe.queue_probe())
        .launch(descriptor)
        .expect("launch");
    let _report = dope.wait().expect("batch completes");

    assert_eq!(pipe.stats.completed(), 12);
    let unique = store.lock().len();
    assert!(unique > 0, "chunks were stored");
}

#[test]
fn default_mechanism_for_goal_runs_a_service() {
    let (service, descriptor) = swaptions::live_service();
    let goal = Goal::MinResponseTime { threads: 3 };
    let dope = Dope::builder(goal)
        .mechanism(for_goal(goal))
        .control_period(Duration::from_millis(10))
        .queue_probe(service.queue_probe())
        .launch(descriptor)
        .expect("launch");
    let params = swaptions::PricingParams {
        trials: 400,
        steps: 8,
        chunks: 4,
    };
    for id in 0..20u64 {
        service
            .queue
            .enqueue(swaptions::make_request(id, params))
            .unwrap();
    }
    service.queue.close();
    dope.wait().expect("drains");
    assert_eq!(service.stats.completed(), 20);
}

#[test]
fn wqt_h_live_switches_modes() {
    let (service, descriptor) = transcode::live_service();
    let dope = Dope::builder(Goal::MinResponseTime { threads: 4 })
        .mechanism(Box::new(WqtH::new(3.0, 4, 2, 2)))
        .control_period(Duration::from_millis(8))
        .queue_probe(service.queue_probe())
        .launch(descriptor)
        .expect("launch");
    let params = transcode::VideoParams {
        frames: 2,
        width: 32,
        height: 32,
    };
    // WQT-H starts SEQ; a long light phase must flip it to PAR.
    for id in 0..30u64 {
        service
            .queue
            .enqueue(transcode::make_video(id, params))
            .unwrap();
        std::thread::sleep(Duration::from_millis(12));
    }
    service.queue.close();
    let report = dope.wait().expect("drains");
    assert_eq!(service.stats.completed(), 30);
    assert!(
        report.reconfigurations >= 1,
        "light load must flip WQT-H into the PAR state"
    );
}

#[test]
fn recorded_live_trace_replays_identically() {
    let recorder = dope_trace::Recorder::bounded(1 << 14);
    let (service, descriptor) = transcode::live_service();
    let dope = Dope::builder(Goal::MinResponseTime { threads: 4 })
        .mechanism(Box::new(WqLinear::new(1, 4, 8.0)))
        .control_period(Duration::from_millis(10))
        .queue_probe(service.queue_probe())
        .recorder(recorder.clone())
        .launch(descriptor)
        .expect("launch");

    let params = transcode::VideoParams {
        frames: 4,
        width: 32,
        height: 32,
    };
    // Same slow-then-burst load as the adaptation test above so WQ-Linear
    // is forced through at least one reconfiguration epoch.
    for id in 0..8u64 {
        service
            .queue
            .enqueue(transcode::make_video(id, params))
            .unwrap();
        std::thread::sleep(Duration::from_millis(25));
    }
    for id in 8..48u64 {
        service
            .queue
            .enqueue(transcode::make_video(id, params))
            .unwrap();
    }
    service.queue.close();
    let report = dope.wait().expect("drains");
    assert!(report.reconfigurations >= 1, "burst must force an epoch");

    // The flight recording round-trips through the JSONL wire format.
    let jsonl = recorder.to_jsonl();
    let records = dope_trace::parse_jsonl(&jsonl).expect("live trace parses");
    assert_eq!(records[0].event.kind(), "Launched");
    assert_eq!(records.last().unwrap().event.kind(), "Finished");

    // The human-readable timeline renders every phase of the decision loop.
    let timeline = dope_trace::render_timeline(&records);
    assert!(timeline.contains("LAUNCH"), "timeline: {timeline}");
    assert!(timeline.contains("SNAPSHOT"));
    assert!(timeline.contains("PROPOSE"));
    assert!(timeline.contains("EPOCH"));
    assert!(timeline.contains("FINISH"));

    // Replaying the trace through dope-sim reproduces the exact sequence
    // of accepted configurations the live executive committed.
    let outcome = dope_trace::replay_into_sim(&records).expect("replay");
    assert!(
        outcome.matches(),
        "live trace must replay to the same accepted-config sequence: \
         recorded {:?} vs replayed {:?}",
        outcome.recorded,
        outcome.replayed
    );
    assert!(
        outcome.recorded.len() >= 2,
        "launch config plus at least one epoch"
    );
}

#[test]
fn early_stop_is_orderly() {
    let (service, descriptor) = transcode::live_service();
    let dope = Dope::builder(Goal::MinResponseTime { threads: 2 })
        .control_period(Duration::from_millis(10))
        .queue_probe(service.queue_probe())
        .launch(descriptor)
        .expect("launch");
    let params = transcode::VideoParams {
        frames: 2,
        width: 32,
        height: 32,
    };
    for id in 0..4u64 {
        service
            .queue
            .enqueue(transcode::make_video(id, params))
            .unwrap();
    }
    std::thread::sleep(Duration::from_millis(60));
    dope.stop();
    let report = dope.wait().expect("stops cleanly");
    assert!(report.elapsed >= Duration::from_millis(50));
}
