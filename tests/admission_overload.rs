//! The admission gate racing a partial reconfiguration.
//!
//! A producer storms a `Shed`-gated service while the mechanism bumps
//! the gated path's extent mid-storm — an extents-only change, so the
//! epoch is a *partial* drain that suspends only the gated path while
//! an untouched background path runs straight through the boundary.
//! The gate's counters must stay coherent across that boundary: every
//! offer gets exactly one verdict, every admitted request is served
//! (the drain suspends workers, it must not lose queued items), and
//! the `AdmissionDecision` records the monitor emits while the drain
//! is in flight carry monotone cumulative counters that satisfy the
//! conservation invariant at every sample.

use dope_core::{
    body_fn, AdmissionPolicy, Config, Goal, Mechanism, MonitorSnapshot, ProgramShape, Resources,
    TaskBody, TaskConfig, TaskCx, TaskKind, TaskSpec, TaskStatus, WorkerSlot,
};
use dope_runtime::Dope;
use dope_trace::{Recorder, TraceEvent};
use dope_workload::{AdmissionQueue, DequeueOutcome, WorkQueue};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Pins a starting configuration, proposes one target at the first
/// consult, then holds.
struct OneBump {
    fired: bool,
    start: Config,
    target: Config,
}

impl Mechanism for OneBump {
    fn name(&self) -> &'static str {
        "OneBump"
    }
    fn initial(&mut self, _shape: &ProgramShape, _res: &Resources) -> Option<Config> {
        Some(self.start.clone())
    }
    fn reconfigure(
        &mut self,
        _snap: &MonitorSnapshot,
        _current: &Config,
        _shape: &ProgramShape,
        _res: &Resources,
    ) -> Option<Config> {
        if self.fired {
            None
        } else {
            self.fired = true;
            Some(self.target.clone())
        }
    }
}

#[test]
fn admission_counters_stay_coherent_across_a_partial_drain() {
    let gate: AdmissionQueue<u64> = AdmissionQueue::new(AdmissionPolicy::Shed { high_water: 32 });
    let served = Arc::new(AtomicU64::new(0));

    // The gated path: drains the admission queue, one item per invoke.
    let gated = {
        let gate_factory = gate.clone();
        let served = Arc::clone(&served);
        TaskSpec::leaf("gated", TaskKind::Par, move |_slot: WorkerSlot| {
            let gate = gate_factory.clone();
            let served = Arc::clone(&served);
            Box::new(body_fn(move |cx: &mut dyn TaskCx| {
                cx.begin();
                let out = gate.take(Duration::from_millis(2));
                let status = match out {
                    DequeueOutcome::Item(_) => {
                        served.fetch_add(1, Ordering::Relaxed);
                        std::thread::sleep(Duration::from_millis(1));
                        if cx.directive().wants_suspend() {
                            TaskStatus::Suspended
                        } else {
                            TaskStatus::Executing
                        }
                    }
                    DequeueOutcome::Drained => TaskStatus::Finished,
                    DequeueOutcome::TimedOut => {
                        if cx.directive().wants_suspend() {
                            TaskStatus::Suspended
                        } else {
                            TaskStatus::Executing
                        }
                    }
                };
                cx.end();
                status
            })) as Box<dyn TaskBody>
        })
    };

    // An untouched path, so the extent bump on `gated` is delta-scoped:
    // this replica must run straight through the epoch boundary.
    let background_queue: WorkQueue<u64> = WorkQueue::new();
    for i in 0..40u64 {
        background_queue.enqueue(i).unwrap();
    }
    background_queue.close();
    let background = {
        let queue = background_queue.clone();
        TaskSpec::leaf("background", TaskKind::Par, move |_slot: WorkerSlot| {
            let queue = queue.clone();
            Box::new(body_fn(move |cx: &mut dyn TaskCx| {
                cx.begin();
                let out = queue.dequeue_timeout(Duration::from_millis(2));
                cx.end();
                match out {
                    DequeueOutcome::Item(_) => {
                        std::thread::sleep(Duration::from_millis(3));
                        TaskStatus::Executing
                    }
                    DequeueOutcome::Drained => TaskStatus::Finished,
                    DequeueOutcome::TimedOut => {
                        if cx.directive().wants_suspend() {
                            TaskStatus::Suspended
                        } else {
                            TaskStatus::Executing
                        }
                    }
                }
            })) as Box<dyn TaskBody>
        })
    };

    let start = Config::new(vec![
        TaskConfig::leaf("gated", 1),
        TaskConfig::leaf("background", 1),
    ]);
    let target = Config::new(vec![
        TaskConfig::leaf("gated", 2),
        TaskConfig::leaf("background", 1),
    ]);
    let recorder = Recorder::bounded(8192);
    let dope = Dope::builder(Goal::MaxThroughput { threads: 3 })
        .mechanism(Box::new(OneBump {
            fired: false,
            start,
            target: target.clone(),
        }))
        .control_period(Duration::from_millis(10))
        .admission(gate.policy())
        .admission_probe(gate.stats_probe())
        .recorder(recorder.clone())
        .launch(vec![gated, background])
        .expect("launch");

    // Storm across the reconfiguration boundary: the first consult
    // (~10 ms in) bumps the gated extent while offers keep arriving.
    let producer = {
        let gate = gate.clone();
        std::thread::spawn(move || {
            for burst in 0..30u64 {
                for i in 0..50 {
                    let _ = gate.offer(burst * 50 + i);
                }
                std::thread::sleep(Duration::from_millis(4));
            }
        })
    };
    producer.join().expect("producer");
    gate.close();
    let report = dope.wait().expect("drain");

    // The extent bump raced the storm and was applied as a delta epoch.
    assert_eq!(report.reconfigurations, 1);
    assert_eq!(report.final_config, target);
    let epochs: Vec<(String, u64)> = recorder
        .records()
        .iter()
        .filter_map(|r| match &r.event {
            TraceEvent::ReconfigureEpoch {
                scope,
                paths_drained,
                ..
            } => Some((scope.clone(), *paths_drained)),
            _ => None,
        })
        .collect();
    assert_eq!(
        epochs,
        vec![("partial".to_string(), 1)],
        "an extents-only bump under storm takes the delta path"
    );

    // Conservation across the drain boundary: one verdict per offer,
    // and the partial drain suspended workers without losing items.
    let stats = gate.stats();
    assert_eq!(stats.offered, 1500, "every producer offer got a verdict");
    assert_eq!(
        stats.offered,
        stats.admitted + stats.shed_high_water,
        "offer conservation survives the reconfiguration race"
    );
    assert!(stats.shed() > 0, "the storm outruns a 32-deep watermark");
    assert_eq!(
        served.load(Ordering::Relaxed),
        stats.admitted,
        "every admitted request is served; the drain loses nothing"
    );

    // Every AdmissionDecision sampled while the race was in flight is
    // internally consistent and cumulative counters never regress.
    let mut last = (0u64, 0u64, 0u64);
    let mut decisions = 0;
    for record in recorder.records() {
        if let TraceEvent::AdmissionDecision {
            policy,
            verdict,
            offered,
            admitted,
            shed,
            ..
        } = &record.event
        {
            decisions += 1;
            assert_eq!(policy, "shed");
            assert!(verdict == "admitted" || verdict == "shed", "{verdict}");
            assert_eq!(
                *offered,
                admitted + shed,
                "conservation holds at every sample"
            );
            assert!(
                *offered >= last.0 && *admitted >= last.1 && *shed >= last.2,
                "cumulative counters are monotone across the boundary"
            );
            last = (*offered, *admitted, *shed);
        }
    }
    assert!(
        decisions >= 2,
        "the monitor sampled the gate during the run"
    );
    assert!(
        last.0 <= stats.offered && last.1 <= stats.admitted,
        "trace samples never run ahead of the gate"
    );
}
