//! Control-loop regression tests for bugs the full-epoch drain used to
//! hide: tick starvation under completion floods, restart backoff
//! blocking shutdown, and the final decision audit going missing.

use dope_core::{
    body_fn, Config, DecisionTrace, FailurePolicy, FailureVerdict, Goal, Mechanism,
    MonitorSnapshot, ProgramShape, Rationale, Resources, TaskBody, TaskCx, TaskKind, TaskSpec,
    TaskStatus, WorkerSlot,
};
use dope_runtime::Dope;
use dope_trace::{Recorder, TraceEvent};
use dope_workload::{DequeueOutcome, WorkQueue};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Counts consults; never proposes, always explains.
struct Auditor {
    consults: Arc<AtomicU64>,
}

impl Mechanism for Auditor {
    fn name(&self) -> &'static str {
        "Auditor"
    }
    fn reconfigure(
        &mut self,
        _snap: &MonitorSnapshot,
        _current: &Config,
        _shape: &ProgramShape,
        _res: &Resources,
    ) -> Option<Config> {
        self.consults.fetch_add(1, Ordering::SeqCst);
        None
    }
    fn explain(&self) -> Option<DecisionTrace> {
        Some(DecisionTrace::new(Rationale::Hold, "hold"))
    }
}

/// Replica completions arriving faster than the control period must not
/// starve the mechanism: the tick deadline is absolute, not reset by
/// every message. Sixteen replicas finish 6 ms apart — every gap is
/// shorter than the 10 ms control period, so a timer that restarts on
/// each completion would never fire.
#[test]
fn control_ticks_survive_completion_floods() {
    let consults = Arc::new(AtomicU64::new(0));
    let spec = TaskSpec::leaf("stagger", TaskKind::Par, move |slot: WorkerSlot| {
        let delay = Duration::from_millis(6 * (u64::from(slot.worker) + 1));
        Box::new(body_fn(move |cx: &mut dyn TaskCx| {
            cx.begin();
            std::thread::sleep(delay);
            cx.end();
            TaskStatus::Finished
        })) as Box<dyn TaskBody>
    });
    let dope = Dope::builder(Goal::MaxThroughput { threads: 16 })
        .mechanism(Box::new(Auditor {
            consults: Arc::clone(&consults),
        }))
        .control_period(Duration::from_millis(10))
        .launch(vec![spec])
        .expect("launch");
    dope.wait().expect("completes");
    assert!(
        consults.load(Ordering::SeqCst) >= 2,
        "a ~96 ms run with a 10 ms control period must consult the \
         mechanism several times even while completions flood in \
         (got {})",
        consults.load(Ordering::SeqCst)
    );
}

/// A stop request must interrupt the restart policy's backoff sleep —
/// shutdown cannot block behind a multi-second backoff.
#[test]
fn restart_backoff_yields_to_stop() {
    let started = Instant::now();
    let spec = TaskSpec::leaf("bomb", TaskKind::Par, move |_slot: WorkerSlot| {
        Box::new(body_fn(move |_cx: &mut dyn TaskCx| -> TaskStatus {
            panic!("always detonates");
        })) as Box<dyn TaskBody>
    });
    let dope = Dope::builder(Goal::MaxThroughput { threads: 1 })
        .control_period(Duration::from_millis(5))
        .failure_policy(FailurePolicy::Restart {
            max_retries: 1_000,
            backoff: Duration::from_secs(5),
        })
        .launch(vec![spec])
        .expect("launch");
    std::thread::sleep(Duration::from_millis(200));
    dope.stop();
    let report = dope.wait().expect("stop lands cleanly mid-backoff");
    let elapsed = started.elapsed();
    assert!(
        elapsed < Duration::from_millis(2_500),
        "stop must interrupt the 5 s backoff, took {elapsed:?}"
    );
    assert!(report.task_failures >= 1);
    assert!(report.failure_verdict >= FailureVerdict::Recovered);
}

/// Every consult the audit holds must reach the trace: the decision
/// pending when the run ends is flushed — scored against a final
/// snapshot — instead of being dropped.
#[test]
fn every_consult_reaches_the_decision_trace() {
    let consults = Arc::new(AtomicU64::new(0));
    let queue = WorkQueue::new();
    for i in 0..120u64 {
        queue.enqueue(i).unwrap();
    }
    queue.close();
    let spec = {
        let queue = queue.clone();
        TaskSpec::leaf("drain", TaskKind::Par, move |_slot: WorkerSlot| {
            let queue = queue.clone();
            Box::new(body_fn(move |cx: &mut dyn TaskCx| {
                cx.begin();
                let outcome = queue.dequeue_timeout(Duration::from_millis(2));
                cx.end();
                match outcome {
                    DequeueOutcome::Item(_) => {
                        std::thread::sleep(Duration::from_millis(1));
                        TaskStatus::Executing
                    }
                    DequeueOutcome::Drained => TaskStatus::Finished,
                    DequeueOutcome::TimedOut => {
                        if cx.directive().wants_suspend() {
                            TaskStatus::Suspended
                        } else {
                            TaskStatus::Executing
                        }
                    }
                }
            })) as Box<dyn TaskBody>
        })
    };
    let recorder = Recorder::bounded(8192);
    let dope = Dope::builder(Goal::MaxThroughput { threads: 2 })
        .mechanism(Box::new(Auditor {
            consults: Arc::clone(&consults),
        }))
        .control_period(Duration::from_millis(10))
        .recorder(recorder.clone())
        .launch(vec![spec])
        .expect("launch");
    dope.wait().expect("completes");

    let decisions: Vec<Option<f64>> = recorder
        .records()
        .iter()
        .filter_map(|r| match &r.event {
            TraceEvent::DecisionTraced {
                realized_throughput,
                ..
            } => Some(*realized_throughput),
            _ => None,
        })
        .collect();
    let consulted = consults.load(Ordering::SeqCst);
    assert!(consulted >= 2, "run too short to exercise the flush");
    assert_eq!(
        decisions.len() as u64,
        consulted,
        "every consult must produce exactly one DecisionTraced event"
    );
    assert!(
        decisions.last().is_some_and(Option::is_some),
        "the final flushed decision is scored against a last snapshot"
    );
}
