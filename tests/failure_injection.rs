//! Failure injection: the executive must stay correct when tasks are slow
//! to suspend, mechanisms misbehave, tasks panic mid-run, or the power
//! meter goes quiet.

use dope_core::{
    body_fn, Config, DiagCode, FailurePolicy, FailureVerdict, Goal, Mechanism, MonitorSnapshot,
    ProgramShape, Resources, TaskBody, TaskConfig, TaskCx, TaskKind, TaskSpec, TaskStatus,
    WorkerSlot,
};
use dope_metrics::MetricsRegistry;
use dope_runtime::Dope;
use dope_trace::{Recorder, TraceEvent};
use dope_workload::{DequeueOutcome, WorkQueue};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// A mechanism that always proposes a configuration violating the budget.
#[derive(Debug)]
struct Hostile;

impl Mechanism for Hostile {
    fn name(&self) -> &'static str {
        "Hostile"
    }

    fn reconfigure(
        &mut self,
        _snap: &MonitorSnapshot,
        _current: &Config,
        _shape: &ProgramShape,
        _res: &Resources,
    ) -> Option<Config> {
        // 1000 workers on a tiny budget: must be rejected, not applied.
        Some(Config::new(vec![TaskConfig::leaf("drain", 1000)]))
    }
}

fn drain_spec(queue: WorkQueue<u64>, hits: Arc<AtomicU64>) -> TaskSpec {
    TaskSpec::leaf("drain", TaskKind::Par, move |_slot: WorkerSlot| {
        let queue = queue.clone();
        let hits = Arc::clone(&hits);
        Box::new(body_fn(move |cx: &mut dyn TaskCx| {
            cx.begin();
            let outcome = queue.dequeue_timeout(Duration::from_millis(2));
            let status = match outcome {
                DequeueOutcome::Item(_) => {
                    hits.fetch_add(1, Ordering::Relaxed);
                    TaskStatus::Executing
                }
                DequeueOutcome::Drained => TaskStatus::Finished,
                DequeueOutcome::TimedOut => {
                    if cx.directive().wants_suspend() {
                        TaskStatus::Suspended
                    } else {
                        TaskStatus::Executing
                    }
                }
            };
            cx.end();
            status
        })) as Box<dyn TaskBody>
    })
}

#[test]
fn invalid_proposals_are_rejected_and_counted() {
    let queue = WorkQueue::new();
    for i in 0..300u64 {
        queue.enqueue(i).unwrap();
    }
    queue.close();
    let hits = Arc::new(AtomicU64::new(0));
    let dope = Dope::builder(Goal::MaxThroughput { threads: 2 })
        .mechanism(Box::new(Hostile))
        .control_period(Duration::from_millis(5))
        .launch(vec![drain_spec(queue, Arc::clone(&hits))])
        .expect("launch");
    let report = dope.wait().expect("completes despite hostile mechanism");
    assert_eq!(hits.load(Ordering::Relaxed), 300);
    assert_eq!(report.reconfigurations, 0, "invalid configs never applied");
}

/// A body that keeps working for a while after being asked to suspend —
/// the executive must wait for it, not lose its work.
#[test]
fn slow_suspenders_drain_before_relaunch() {
    struct Flipper {
        target: Config,
        flipped: bool,
    }
    impl std::fmt::Debug for Flipper {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str("Flipper")
        }
    }
    impl Mechanism for Flipper {
        fn name(&self) -> &'static str {
            "Flipper"
        }
        fn reconfigure(
            &mut self,
            _snap: &MonitorSnapshot,
            current: &Config,
            _shape: &ProgramShape,
            _res: &Resources,
        ) -> Option<Config> {
            if self.flipped || *current == self.target {
                return None;
            }
            self.flipped = true;
            Some(self.target.clone())
        }
    }

    let queue = WorkQueue::new();
    for i in 0..400u64 {
        queue.enqueue(i).unwrap();
    }
    queue.close();
    let hits = Arc::new(AtomicU64::new(0));
    let spec = {
        let queue = queue.clone();
        let hits = Arc::clone(&hits);
        TaskSpec::leaf("drain", TaskKind::Par, move |_slot: WorkerSlot| {
            let queue = queue.clone();
            let hits = Arc::clone(&hits);
            let mut ignored_suspends = 0u32;
            Box::new(body_fn(move |cx: &mut dyn TaskCx| {
                let directive = cx.begin();
                let outcome = queue.dequeue_timeout(Duration::from_millis(2));
                let status = match outcome {
                    DequeueOutcome::Item(_) => {
                        hits.fetch_add(1, Ordering::Relaxed);
                        std::thread::sleep(Duration::from_micros(300));
                        // Slow to yield: honour only the fourth suspend.
                        if directive.wants_suspend() {
                            ignored_suspends += 1;
                            if ignored_suspends >= 4 {
                                cx.end();
                                return TaskStatus::Suspended;
                            }
                        }
                        TaskStatus::Executing
                    }
                    DequeueOutcome::Drained => TaskStatus::Finished,
                    DequeueOutcome::TimedOut => {
                        if directive.wants_suspend() {
                            TaskStatus::Suspended
                        } else {
                            TaskStatus::Executing
                        }
                    }
                };
                cx.end();
                status
            })) as Box<dyn TaskBody>
        })
    };

    let dope = Dope::builder(Goal::MaxThroughput { threads: 2 })
        .mechanism(Box::new(Flipper {
            target: Config::new(vec![TaskConfig::leaf("drain", 1)]),
            flipped: false,
        }))
        .control_period(Duration::from_millis(5))
        .launch(vec![spec])
        .expect("launch");
    let report = dope.wait().expect("completes");
    assert_eq!(
        hits.load(Ordering::Relaxed),
        400,
        "slow suspension must not lose work"
    );
    assert_eq!(report.reconfigurations, 1);
    assert_eq!(report.final_config.total_threads(), 1);
}

/// A task whose replica 0 of the *first* instantiation panics before
/// touching the queue; every later instantiation behaves. `armed`
/// counts factory calls so re-instantiated epochs run clean bodies.
fn bomb_once_spec(
    name: &str,
    queue: WorkQueue<u64>,
    hits: Arc<AtomicU64>,
    armed: Arc<AtomicU64>,
) -> TaskSpec {
    TaskSpec::leaf(name, TaskKind::Par, move |slot: WorkerSlot| {
        let queue = queue.clone();
        let hits = Arc::clone(&hits);
        let instance = armed.fetch_add(1, Ordering::SeqCst);
        let exploding = instance == 0 && slot.worker == 0;
        Box::new(body_fn(move |cx: &mut dyn TaskCx| {
            if exploding {
                panic!("injected failure");
            }
            cx.begin();
            let outcome = queue.dequeue_timeout(Duration::from_millis(2));
            cx.end();
            match outcome {
                DequeueOutcome::Item(_) => {
                    hits.fetch_add(1, Ordering::Relaxed);
                    TaskStatus::Executing
                }
                DequeueOutcome::Drained => TaskStatus::Finished,
                DequeueOutcome::TimedOut => {
                    if cx.directive().wants_suspend() {
                        TaskStatus::Suspended
                    } else {
                        TaskStatus::Executing
                    }
                }
            }
        })) as Box<dyn TaskBody>
    })
}

fn counter_value(render: &str, metric: &str) -> Option<f64> {
    render
        .lines()
        .find(|l| l.starts_with(metric) && !l.starts_with('#'))
        .and_then(|l| l.split_whitespace().last())
        .and_then(|v| v.parse().ok())
}

/// Tentpole acceptance: a replica panics mid-run; no worker thread dies
/// (the sibling replica drains the whole queue), the run terminates per
/// the default `Abort` policy with the panic message in the error, the
/// `TaskFailed` event is recorded, and the failure counter fires.
#[test]
fn panicking_replica_aborts_without_killing_workers() {
    let queue = WorkQueue::new();
    for i in 0..300u64 {
        queue.enqueue(i).unwrap();
    }
    queue.close();
    let hits = Arc::new(AtomicU64::new(0));
    let armed = Arc::new(AtomicU64::new(0));
    let recorder = Recorder::bounded(4096);
    let registry = MetricsRegistry::new();
    // threads=2 over one leaf: extent 2, worker 0 explodes, worker 1
    // must finish all 300 items on the surviving (unkilled) thread.
    let dope = Dope::builder(Goal::MaxThroughput { threads: 2 })
        .control_period(Duration::from_millis(5))
        .recorder(recorder.clone())
        .metrics(registry.clone())
        .launch(vec![bomb_once_spec(
            "drain",
            queue,
            Arc::clone(&hits),
            Arc::clone(&armed),
        )])
        .expect("launch");
    let err = dope.wait().expect_err("abort policy fails the run");
    assert_eq!(err.code(), DiagCode::TaskFailed);
    let text = err.to_string();
    assert!(text.contains("injected failure"), "{text}");
    assert_eq!(
        hits.load(Ordering::Relaxed),
        300,
        "the surviving replica drains everything: no worker died"
    );
    let failed: Vec<_> = recorder
        .records()
        .into_iter()
        .filter_map(|r| match r.event {
            TraceEvent::TaskFailed {
                path,
                reason,
                policy,
            } => Some((path, reason, policy)),
            _ => None,
        })
        .collect();
    assert_eq!(failed.len(), 1, "exactly one replica failed");
    assert_eq!(failed[0].2, "abort");
    assert!(failed[0].1.contains("injected failure"));
    let render = registry.render();
    assert_eq!(
        counter_value(&render, "dope_task_failures_total"),
        Some(1.0),
        "{render}"
    );
    assert_eq!(
        counter_value(&render, "dope_pool_panics_caught_total"),
        Some(0.0),
        "executive-level supervision reports the panic; the pool's own \
         net stays untouched"
    );
}

/// Under `Restart` the failed replica is re-instantiated next epoch and
/// the run completes, reporting an honest `Recovered` verdict.
#[test]
fn restart_policy_reinstates_the_replica_and_completes() {
    let queue = WorkQueue::new();
    for i in 0..200u64 {
        queue.enqueue(i).unwrap();
    }
    queue.close();
    let hits = Arc::new(AtomicU64::new(0));
    let armed = Arc::new(AtomicU64::new(0));
    let recorder = Recorder::bounded(4096);
    let registry = MetricsRegistry::new();
    let dope = Dope::builder(Goal::MaxThroughput { threads: 2 })
        .control_period(Duration::from_millis(5))
        .failure_policy(FailurePolicy::Restart {
            max_retries: 3,
            backoff: Duration::from_millis(1),
        })
        .recorder(recorder.clone())
        .metrics(registry.clone())
        .launch(vec![bomb_once_spec(
            "drain",
            queue,
            Arc::clone(&hits),
            Arc::clone(&armed),
        )])
        .expect("launch");
    let report = dope.wait().expect("restart recovers the run");
    assert_eq!(hits.load(Ordering::Relaxed), 200, "no work lost");
    assert_eq!(report.task_failures, 1);
    assert_eq!(report.task_restarts, 1);
    assert_eq!(report.lost_jobs, 0);
    assert_eq!(report.failure_verdict, FailureVerdict::Recovered);
    assert!(recorder.records().iter().any(|r| matches!(
        &r.event,
        TraceEvent::TaskFailed { policy, .. } if policy == "restart"
    )));
    let render = registry.render();
    assert_eq!(
        counter_value(&render, "dope_task_restarts_total"),
        Some(1.0),
        "{render}"
    );
    // Pool-capacity regression: every dispatched job parked its worker
    // again, panic or not — a leak here starves later epochs.
    assert_eq!(
        counter_value(&render, "dope_pool_jobs_dispatched_total"),
        counter_value(&render, "dope_pool_worker_parks_total"),
        "{render}"
    );
}

/// A replica that panics on *every* instantiation exhausts the restart
/// budget and the run fails with the budget in the error text.
#[test]
fn restart_budget_exhaustion_aborts_the_run() {
    let spec = TaskSpec::leaf("always-bomb", TaskKind::Par, move |_slot: WorkerSlot| {
        Box::new(body_fn(move |_cx: &mut dyn TaskCx| -> TaskStatus {
            panic!("hopeless");
        })) as Box<dyn TaskBody>
    });
    let registry = MetricsRegistry::new();
    let dope = Dope::builder(Goal::MaxThroughput { threads: 1 })
        .control_period(Duration::from_millis(5))
        .failure_policy(FailurePolicy::Restart {
            max_retries: 2,
            backoff: Duration::ZERO,
        })
        .metrics(registry.clone())
        .launch(vec![spec])
        .expect("launch");
    let err = dope.wait().expect_err("budget exhausted");
    let text = err.to_string();
    assert!(text.contains("restart budget of 2 exhausted"), "{text}");
    let render = registry.render();
    assert_eq!(
        counter_value(&render, "dope_task_restarts_total"),
        Some(2.0),
        "{render}"
    );
    assert_eq!(
        counter_value(&render, "dope_task_failures_total"),
        Some(3.0),
        "one failure per epoch: two restarted, the third aborted"
    );
}

/// Under `Degrade` the failed replica's DoP is dropped and the epoch
/// relaunches with the survivors only.
#[test]
fn degrade_policy_drops_the_failed_replicas_dop() {
    let queue = WorkQueue::new();
    for i in 0..200u64 {
        queue.enqueue(i).unwrap();
    }
    queue.close();
    let hits = Arc::new(AtomicU64::new(0));
    let armed = Arc::new(AtomicU64::new(0));
    let recorder = Recorder::bounded(4096);
    let dope = Dope::builder(Goal::MaxThroughput { threads: 2 })
        .control_period(Duration::from_millis(5))
        .failure_policy(FailurePolicy::Degrade)
        .recorder(recorder.clone())
        .launch(vec![bomb_once_spec(
            "drain",
            queue,
            Arc::clone(&hits),
            Arc::clone(&armed),
        )])
        .expect("launch");
    let report = dope.wait().expect("degrade keeps the run alive");
    assert_eq!(hits.load(Ordering::Relaxed), 200, "survivors drain it all");
    assert_eq!(report.task_failures, 1);
    assert_eq!(report.task_restarts, 0);
    assert_eq!(report.failure_verdict, FailureVerdict::Degraded);
    assert_eq!(
        report.final_config.total_threads(),
        1,
        "extent dropped from 2 to the single survivor"
    );
    assert!(
        report.reconfigurations >= 1,
        "degrading is a reconfiguration"
    );
    assert!(recorder.records().iter().any(|r| matches!(
        &r.event,
        TraceEvent::TaskFailed { policy, .. } if policy == "degrade"
    )));
}

/// A task that loses its *only* replica cannot be degraded: the run
/// aborts instead of continuing with a hole in the pipeline.
#[test]
fn degrade_with_no_survivors_aborts() {
    let spec = TaskSpec::leaf("solo-bomb", TaskKind::Par, move |_slot: WorkerSlot| {
        Box::new(body_fn(move |_cx: &mut dyn TaskCx| -> TaskStatus {
            panic!("sole replica down");
        })) as Box<dyn TaskBody>
    });
    let dope = Dope::builder(Goal::MaxThroughput { threads: 1 })
        .control_period(Duration::from_millis(5))
        .failure_policy(FailurePolicy::Degrade)
        .launch(vec![spec])
        .expect("launch");
    let err = dope.wait().expect_err("nothing left to degrade to");
    let text = err.to_string();
    assert!(text.contains("cannot degrade below one"), "{text}");
    assert!(text.contains("sole replica down"), "{text}");
}

/// A panic racing a reconfiguration drain: the proposal is accepted and
/// the suspend directive goes out, but a replica detonates instead of
/// suspending. The failure policy must win the race — handled first,
/// with the stale reconfiguration target retired as `superseded` in the
/// trace rather than silently discarded — and the run still completes
/// with nothing lost.
#[test]
fn panic_during_reconfiguration_drain_is_handled_first() {
    struct Widen {
        target: Config,
    }
    impl Mechanism for Widen {
        fn name(&self) -> &'static str {
            "Widen"
        }
        fn reconfigure(
            &mut self,
            _snap: &MonitorSnapshot,
            current: &Config,
            _shape: &ProgramShape,
            _res: &Resources,
        ) -> Option<Config> {
            (*current != self.target).then(|| self.target.clone())
        }
    }

    let queue = WorkQueue::new();
    for i in 0..400u64 {
        queue.enqueue(i).unwrap();
    }
    queue.close();
    let hits = Arc::new(AtomicU64::new(0));
    let exploded = Arc::new(AtomicU64::new(0));
    let spec = {
        let queue = queue.clone();
        let hits = Arc::clone(&hits);
        let exploded = Arc::clone(&exploded);
        TaskSpec::leaf("drain", TaskKind::Par, move |slot: WorkerSlot| {
            let queue = queue.clone();
            let hits = Arc::clone(&hits);
            let exploded = Arc::clone(&exploded);
            Box::new(body_fn(move |cx: &mut dyn TaskCx| {
                let directive = cx.begin();
                // The first replica to observe the drain directive blows
                // up exactly at the suspension point (once per run).
                if directive.wants_suspend()
                    && slot.worker == 0
                    && exploded
                        .compare_exchange(0, 1, Ordering::SeqCst, Ordering::SeqCst)
                        .is_ok()
                {
                    cx.end();
                    panic!("panicked while draining");
                }
                let outcome = queue.dequeue_timeout(Duration::from_millis(2));
                cx.end();
                match outcome {
                    DequeueOutcome::Item(_) => {
                        hits.fetch_add(1, Ordering::Relaxed);
                        std::thread::sleep(Duration::from_micros(200));
                        TaskStatus::Executing
                    }
                    DequeueOutcome::Drained => TaskStatus::Finished,
                    DequeueOutcome::TimedOut => {
                        if directive.wants_suspend() {
                            TaskStatus::Suspended
                        } else {
                            TaskStatus::Executing
                        }
                    }
                }
            })) as Box<dyn TaskBody>
        })
    };
    let dope = Dope::builder(Goal::MaxThroughput { threads: 4 })
        .mechanism(Box::new(Widen {
            target: Config::new(vec![TaskConfig::leaf("drain", 2)]),
        }))
        .control_period(Duration::from_millis(5))
        .failure_policy(FailurePolicy::Restart {
            max_retries: 4,
            backoff: Duration::ZERO,
        })
        .launch(vec![spec])
        .expect("launch");
    let report = dope.wait().expect("restart absorbs the race");
    assert_eq!(hits.load(Ordering::Relaxed), 400, "no items lost");
    // The panic may land before, during, or after the drain settles, so
    // only the honest accounting is asserted, not the exact schedule.
    if exploded.load(Ordering::SeqCst) == 1 {
        assert_eq!(report.task_failures, 1);
        assert_eq!(report.task_restarts, 1);
        assert!(report.failure_verdict >= FailureVerdict::Recovered);
    } else {
        assert_eq!(report.failure_verdict, FailureVerdict::Clean);
    }
    assert_eq!(report.lost_jobs, 0);
}

/// The partial-drain interleaving: a single-leaf extent change is
/// accepted and takes the delta path, but the replica it steers to a
/// consistent point detonates the moment it observes the per-path
/// suspend directive. The failure must escalate to a full drain, the
/// accepted-but-unapplied target must be retired as `superseded` in the
/// trace (not dropped silently), and the degrade policy then shrinks
/// the failed path — all without losing a single item.
#[test]
fn failure_during_partial_drain_supersedes_the_target() {
    struct Narrow {
        fired: bool,
        target: Config,
    }
    impl Mechanism for Narrow {
        fn name(&self) -> &'static str {
            "Narrow"
        }
        fn reconfigure(
            &mut self,
            _snap: &MonitorSnapshot,
            _current: &Config,
            _shape: &ProgramShape,
            _res: &Resources,
        ) -> Option<Config> {
            if self.fired {
                None
            } else {
                self.fired = true;
                Some(self.target.clone())
            }
        }
    }

    let queue = WorkQueue::new();
    for i in 0..400u64 {
        queue.enqueue(i).unwrap();
    }
    queue.close();
    let hits = Arc::new(AtomicU64::new(0));
    let exploded = Arc::new(AtomicU64::new(0));
    let spec = {
        let queue = queue.clone();
        let hits = Arc::clone(&hits);
        let exploded = Arc::clone(&exploded);
        TaskSpec::leaf("drain", TaskKind::Par, move |slot: WorkerSlot| {
            let queue = queue.clone();
            let hits = Arc::clone(&hits);
            let exploded = Arc::clone(&exploded);
            Box::new(body_fn(move |cx: &mut dyn TaskCx| {
                let directive = cx.begin();
                // Detonate exactly at the partial drain's suspension
                // point (once per run): the per-path flag is the only
                // suspend source until the failure escalates it.
                if directive.wants_suspend()
                    && slot.worker == 0
                    && exploded
                        .compare_exchange(0, 1, Ordering::SeqCst, Ordering::SeqCst)
                        .is_ok()
                {
                    cx.end();
                    panic!("panicked during the partial drain");
                }
                let outcome = queue.dequeue_timeout(Duration::from_millis(2));
                cx.end();
                match outcome {
                    DequeueOutcome::Item(_) => {
                        hits.fetch_add(1, Ordering::Relaxed);
                        std::thread::sleep(Duration::from_micros(200));
                        TaskStatus::Executing
                    }
                    DequeueOutcome::Drained => TaskStatus::Finished,
                    DequeueOutcome::TimedOut => {
                        if directive.wants_suspend() {
                            TaskStatus::Suspended
                        } else {
                            TaskStatus::Executing
                        }
                    }
                }
            })) as Box<dyn TaskBody>
        })
    };
    let recorder = Recorder::bounded(8192);
    let dope = Dope::builder(Goal::MaxThroughput { threads: 4 })
        .mechanism(Box::new(Narrow {
            fired: false,
            target: Config::new(vec![TaskConfig::leaf("drain", 2)]),
        }))
        .control_period(Duration::from_millis(5))
        .failure_policy(FailurePolicy::Degrade)
        .recorder(recorder.clone())
        .launch(vec![spec])
        .expect("launch");
    let report = dope.wait().expect("degrade absorbs the race");

    assert_eq!(hits.load(Ordering::Relaxed), 400, "no items lost");
    assert_eq!(exploded.load(Ordering::SeqCst), 1, "the bomb armed");
    assert_eq!(report.task_failures, 1);
    assert_eq!(report.failure_verdict, FailureVerdict::Degraded);
    assert_eq!(report.lost_jobs, 0);
    // Degrade shrank the live (pre-target) extent 4 by the one dead
    // replica; the superseded target was never applied.
    assert_eq!(report.final_config.total_threads(), 3);

    let verdicts: Vec<String> = recorder
        .records()
        .iter()
        .filter_map(|r| match &r.event {
            TraceEvent::ProposalEvaluated { verdict, .. } => Some(format!("{verdict:?}")),
            _ => None,
        })
        .collect();
    assert!(
        verdicts.iter().any(|v| v.contains("Accepted")),
        "the proposal was accepted first: {verdicts:?}"
    );
    assert!(
        verdicts.iter().any(|v| v.contains("Superseded")),
        "the discarded target must be traced as superseded: {verdicts:?}"
    );
}

#[test]
fn tpc_survives_a_dead_power_meter() {
    use dope_mechanisms::Tpc;
    use dope_sim::pipeline::{run_pipeline, PipelineParams, Source};

    // No power attachment at all: every snapshot has `power_watts: None`.
    let model = dope_apps::ferret::sim_model();
    let mut tpc = Tpc::default();
    let out = run_pipeline(
        &model,
        &Source::Saturated,
        &mut tpc,
        Resources::threads(24).with_power_budget(630.0),
        &PipelineParams {
            horizon_secs: 20.0,
            ..PipelineParams::default()
        },
    );
    // The controller holds its initial configuration but the pipeline
    // still makes progress.
    assert!(out.completed > 0);
    assert_eq!(out.config_history.len(), 0);
}

#[test]
fn stale_power_samples_pause_the_controller() {
    use dope_mechanisms::Tpc;
    use dope_platform::PowerModel;
    use dope_sim::pipeline::{run_pipeline, PipelineParams, PowerSim, Source};

    // A meter so slow it produces one fresh sample per minute: TPC may
    // only act on fresh samples, so reconfigurations are bounded by the
    // sample count, not the tick count.
    let model = dope_apps::ferret::sim_model();
    let mut tpc = Tpc::default();
    let horizon = 120.0;
    let out = run_pipeline(
        &model,
        &Source::Saturated,
        &mut tpc,
        Resources::threads(24).with_power_budget(630.0),
        &PipelineParams {
            horizon_secs: horizon,
            control_period_secs: 1.0,
            power: Some(PowerSim {
                model: PowerModel::default(),
                sample_interval_secs: 60.0,
                seed: 5,
            }),
            ..PipelineParams::default()
        },
    );
    let fresh_samples = (horizon / 60.0) as usize + 1;
    assert!(
        out.config_history.len() <= fresh_samples,
        "{} reconfigurations from {fresh_samples} fresh samples",
        out.config_history.len()
    );
}
