//! Failure injection: the executive must stay correct when tasks are slow
//! to suspend, mechanisms misbehave, or the power meter goes quiet.

use dope_core::{
    body_fn, Config, Goal, Mechanism, MonitorSnapshot, ProgramShape, Resources, TaskBody,
    TaskConfig, TaskCx, TaskKind, TaskSpec, TaskStatus, WorkerSlot,
};
use dope_runtime::Dope;
use dope_workload::{DequeueOutcome, WorkQueue};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// A mechanism that always proposes a configuration violating the budget.
#[derive(Debug)]
struct Hostile;

impl Mechanism for Hostile {
    fn name(&self) -> &'static str {
        "Hostile"
    }

    fn reconfigure(
        &mut self,
        _snap: &MonitorSnapshot,
        _current: &Config,
        _shape: &ProgramShape,
        _res: &Resources,
    ) -> Option<Config> {
        // 1000 workers on a tiny budget: must be rejected, not applied.
        Some(Config::new(vec![TaskConfig::leaf("drain", 1000)]))
    }
}

fn drain_spec(queue: WorkQueue<u64>, hits: Arc<AtomicU64>) -> TaskSpec {
    TaskSpec::leaf("drain", TaskKind::Par, move |_slot: WorkerSlot| {
        let queue = queue.clone();
        let hits = Arc::clone(&hits);
        Box::new(body_fn(move |cx: &mut dyn TaskCx| {
            cx.begin();
            let outcome = queue.dequeue_timeout(Duration::from_millis(2));
            let status = match outcome {
                DequeueOutcome::Item(_) => {
                    hits.fetch_add(1, Ordering::Relaxed);
                    TaskStatus::Executing
                }
                DequeueOutcome::Drained => TaskStatus::Finished,
                DequeueOutcome::TimedOut => {
                    if cx.directive().wants_suspend() {
                        TaskStatus::Suspended
                    } else {
                        TaskStatus::Executing
                    }
                }
            };
            cx.end();
            status
        })) as Box<dyn TaskBody>
    })
}

#[test]
fn invalid_proposals_are_rejected_and_counted() {
    let queue = WorkQueue::new();
    for i in 0..300u64 {
        queue.enqueue(i).unwrap();
    }
    queue.close();
    let hits = Arc::new(AtomicU64::new(0));
    let dope = Dope::builder(Goal::MaxThroughput { threads: 2 })
        .mechanism(Box::new(Hostile))
        .control_period(Duration::from_millis(5))
        .launch(vec![drain_spec(queue, Arc::clone(&hits))])
        .expect("launch");
    let report = dope.wait().expect("completes despite hostile mechanism");
    assert_eq!(hits.load(Ordering::Relaxed), 300);
    assert_eq!(report.reconfigurations, 0, "invalid configs never applied");
}

/// A body that keeps working for a while after being asked to suspend —
/// the executive must wait for it, not lose its work.
#[test]
fn slow_suspenders_drain_before_relaunch() {
    struct Flipper {
        target: Config,
        flipped: bool,
    }
    impl std::fmt::Debug for Flipper {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str("Flipper")
        }
    }
    impl Mechanism for Flipper {
        fn name(&self) -> &'static str {
            "Flipper"
        }
        fn reconfigure(
            &mut self,
            _snap: &MonitorSnapshot,
            current: &Config,
            _shape: &ProgramShape,
            _res: &Resources,
        ) -> Option<Config> {
            if self.flipped || *current == self.target {
                return None;
            }
            self.flipped = true;
            Some(self.target.clone())
        }
    }

    let queue = WorkQueue::new();
    for i in 0..400u64 {
        queue.enqueue(i).unwrap();
    }
    queue.close();
    let hits = Arc::new(AtomicU64::new(0));
    let spec = {
        let queue = queue.clone();
        let hits = Arc::clone(&hits);
        TaskSpec::leaf("drain", TaskKind::Par, move |_slot: WorkerSlot| {
            let queue = queue.clone();
            let hits = Arc::clone(&hits);
            let mut ignored_suspends = 0u32;
            Box::new(body_fn(move |cx: &mut dyn TaskCx| {
                let directive = cx.begin();
                let outcome = queue.dequeue_timeout(Duration::from_millis(2));
                let status = match outcome {
                    DequeueOutcome::Item(_) => {
                        hits.fetch_add(1, Ordering::Relaxed);
                        std::thread::sleep(Duration::from_micros(300));
                        // Slow to yield: honour only the fourth suspend.
                        if directive.wants_suspend() {
                            ignored_suspends += 1;
                            if ignored_suspends >= 4 {
                                cx.end();
                                return TaskStatus::Suspended;
                            }
                        }
                        TaskStatus::Executing
                    }
                    DequeueOutcome::Drained => TaskStatus::Finished,
                    DequeueOutcome::TimedOut => {
                        if directive.wants_suspend() {
                            TaskStatus::Suspended
                        } else {
                            TaskStatus::Executing
                        }
                    }
                };
                cx.end();
                status
            })) as Box<dyn TaskBody>
        })
    };

    let dope = Dope::builder(Goal::MaxThroughput { threads: 2 })
        .mechanism(Box::new(Flipper {
            target: Config::new(vec![TaskConfig::leaf("drain", 1)]),
            flipped: false,
        }))
        .control_period(Duration::from_millis(5))
        .launch(vec![spec])
        .expect("launch");
    let report = dope.wait().expect("completes");
    assert_eq!(
        hits.load(Ordering::Relaxed),
        400,
        "slow suspension must not lose work"
    );
    assert_eq!(report.reconfigurations, 1);
    assert_eq!(report.final_config.total_threads(), 1);
}

#[test]
fn tpc_survives_a_dead_power_meter() {
    use dope_mechanisms::Tpc;
    use dope_sim::pipeline::{run_pipeline, PipelineParams, Source};

    // No power attachment at all: every snapshot has `power_watts: None`.
    let model = dope_apps::ferret::sim_model();
    let mut tpc = Tpc::default();
    let out = run_pipeline(
        &model,
        &Source::Saturated,
        &mut tpc,
        Resources::threads(24).with_power_budget(630.0),
        &PipelineParams {
            horizon_secs: 20.0,
            ..PipelineParams::default()
        },
    );
    // The controller holds its initial configuration but the pipeline
    // still makes progress.
    assert!(out.completed > 0);
    assert_eq!(out.config_history.len(), 0);
}

#[test]
fn stale_power_samples_pause_the_controller() {
    use dope_mechanisms::Tpc;
    use dope_platform::PowerModel;
    use dope_sim::pipeline::{run_pipeline, PipelineParams, PowerSim, Source};

    // A meter so slow it produces one fresh sample per minute: TPC may
    // only act on fresh samples, so reconfigurations are bounded by the
    // sample count, not the tick count.
    let model = dope_apps::ferret::sim_model();
    let mut tpc = Tpc::default();
    let horizon = 120.0;
    let out = run_pipeline(
        &model,
        &Source::Saturated,
        &mut tpc,
        Resources::threads(24).with_power_budget(630.0),
        &PipelineParams {
            horizon_secs: horizon,
            control_period_secs: 1.0,
            power: Some(PowerSim {
                model: PowerModel::default(),
                sample_interval_secs: 60.0,
                seed: 5,
            }),
            ..PipelineParams::default()
        },
    );
    let fresh_samples = (horizon / 60.0) as usize + 1;
    assert!(
        out.config_history.len() <= fresh_samples,
        "{} reconfigurations from {fresh_samples} fresh samples",
        out.config_history.len()
    );
}
