//! Smoke tests of the live metrics plane.
//!
//! A real WQ-Linear run serves its own Prometheus endpoint, scrapes it
//! mid-flight like `curl` would, and meters its own monitoring overhead
//! against the paper's "< 1 %" claim (held here to a 3 % regression
//! ceiling — CI machines are noisy). A separate test ages a freshly
//! recorded trace into the pre-percentile dialect and checks the offline
//! tooling still accepts it.

use dope_apps::transcode;
use dope_core::Goal;
use dope_mechanisms::WqLinear;
use dope_metrics::{names, scrape, MetricsRegistry, MetricsServer};
use dope_runtime::Dope;
use std::time::Duration;

/// Every metric family name declared by a `# TYPE` exposition line.
fn exposed_families(text: &str) -> Vec<String> {
    text.lines()
        .filter_map(|line| line.strip_prefix("# TYPE "))
        .filter_map(|rest| rest.split_whitespace().next())
        .map(str::to_string)
        .collect()
}

#[test]
fn live_scrape_is_well_formed_and_canonical() {
    let (service, descriptor) = transcode::live_service();
    let registry = MetricsRegistry::new();
    let server = MetricsServer::serve("127.0.0.1:0", registry.clone()).expect("bind endpoint");
    let dope = Dope::builder(Goal::MinResponseTime { threads: 4 })
        .mechanism(Box::new(WqLinear::new(1, 4, 8.0)))
        .control_period(Duration::from_millis(10))
        .queue_probe(service.queue_probe())
        .metrics(registry.clone())
        .launch(descriptor)
        .expect("launch");

    let params = transcode::VideoParams {
        frames: 4,
        width: 32,
        height: 32,
    };
    for id in 0..24u64 {
        service
            .queue
            .enqueue(transcode::make_video(id, params))
            .unwrap();
    }
    // Let work start, then scrape the *live* endpoint exactly as an
    // external scraper would, while the service is still transcoding.
    std::thread::sleep(Duration::from_millis(80));
    let monitor = dope.monitor();
    let _ = monitor.snapshot();
    let live = scrape(&server.local_addr().to_string()).expect("live scrape");

    service.queue.close();
    dope.wait().expect("drains");
    assert_eq!(service.stats.completed(), 24);

    // The acceptance trio: exec-latency histogram buckets, the epoch
    // counter, and the self-measured overhead ratio.
    let bucket = format!("{}_bucket", names::TASK_EXEC_SECONDS);
    let count = format!("{}_count", names::TASK_EXEC_SECONDS);
    let sum = format!("{}_sum", names::TASK_EXEC_SECONDS);
    assert!(live.contains(&bucket) && live.contains("le=\""), "{live}");
    assert!(live.contains("le=\"+Inf\""), "{live}");
    assert!(live.contains(&count) && live.contains(&sum), "{live}");
    assert!(live.contains(names::RECONFIGURE_EPOCHS_TOTAL), "{live}");
    assert!(live.contains(names::MONITORING_OVERHEAD_RATIO), "{live}");

    // Well-formed exposition: every family has HELP and TYPE headers,
    // every sample line belongs to a declared family and carries a
    // parseable value.
    let families = exposed_families(&live);
    assert!(!families.is_empty());
    for family in &families {
        assert!(live.contains(&format!("# HELP {family} ")), "{family}");
        assert!(
            names::ALL.contains(&family.as_str()),
            "scrape exposes {family}, which is not in names::ALL"
        );
    }
    for line in live
        .lines()
        .filter(|l| !l.starts_with('#') && !l.is_empty())
    {
        let (series, value) = line.rsplit_once(' ').expect("sample line");
        let name = series.split('{').next().unwrap();
        assert!(
            families.iter().any(|f| name.starts_with(f.as_str())),
            "sample {name} has no # TYPE header"
        );
        assert!(
            value.parse::<f64>().is_ok() || value == "+Inf",
            "unparseable value {value:?} in {line:?}"
        );
    }

    // After the drain, a fresh snapshot publishes the final queue
    // counters and a second scrape shows the completed work.
    let _ = monitor.snapshot();
    let final_scrape = scrape(&server.local_addr().to_string()).expect("final scrape");
    assert!(
        final_scrape.contains(&format!("{} 24", names::QUEUE_COMPLETED_TOTAL)),
        "{final_scrape}"
    );
    server.shutdown();
}

#[test]
fn concurrent_scrapes_never_observe_a_torn_exposition() {
    let (service, descriptor) = transcode::live_service();
    let registry = MetricsRegistry::new();
    let server = MetricsServer::serve("127.0.0.1:0", registry.clone()).expect("bind endpoint");
    let addr = server.local_addr().to_string();
    let dope = Dope::builder(Goal::MinResponseTime { threads: 4 })
        .mechanism(Box::new(WqLinear::new(1, 4, 8.0)))
        .control_period(Duration::from_millis(5))
        .queue_probe(service.queue_probe())
        .metrics(registry.clone())
        .launch(descriptor)
        .expect("launch");

    let params = transcode::VideoParams {
        frames: 6,
        width: 48,
        height: 48,
    };
    for id in 0..48u64 {
        service
            .queue
            .enqueue(transcode::make_video(id, params))
            .unwrap();
    }

    // N scraper threads hammer the endpoint while the executive keeps
    // reconfiguring (a 5 ms control period over 48 videos guarantees
    // live registry churn: counters incrementing, histograms filling,
    // per-rationale series appearing for the first time). Every scrape
    // must be a complete, well-formed exposition — a torn render would
    // show a sample line whose family has no TYPE header, a HELP-less
    // family, or an unparseable value.
    const SCRAPERS: usize = 8;
    let scrapes: Vec<std::thread::JoinHandle<Vec<String>>> = (0..SCRAPERS)
        .map(|_| {
            let addr = addr.clone();
            std::thread::spawn(move || {
                (0..25)
                    .map(|_| scrape(&addr).expect("concurrent scrape"))
                    .collect()
            })
        })
        .collect();
    let bodies: Vec<String> = scrapes
        .into_iter()
        .flat_map(|handle| handle.join().expect("scraper thread must not panic"))
        .collect();

    service.queue.close();
    dope.wait().expect("drains");
    server.shutdown();

    assert_eq!(bodies.len(), SCRAPERS * 25);
    for body in &bodies {
        let families = exposed_families(body);
        for family in &families {
            assert!(
                body.contains(&format!("# HELP {family} ")),
                "family {family} lost its HELP header mid-reconfiguration"
            );
            assert!(
                names::ALL.contains(&family.as_str()),
                "torn scrape exposes {family}, which is not in names::ALL"
            );
        }
        for line in body
            .lines()
            .filter(|l| !l.starts_with('#') && !l.is_empty())
        {
            let (series, value) = line
                .rsplit_once(' ')
                .unwrap_or_else(|| panic!("torn sample line {line:?}"));
            let name = series.split('{').next().unwrap();
            assert!(
                families.iter().any(|f| name.starts_with(f.as_str())),
                "sample {name} appeared without its # TYPE header"
            );
            assert!(
                value.parse::<f64>().is_ok() || value == "+Inf",
                "unparseable value {value:?} in {line:?}"
            );
        }
    }

    // Monotone reads: a counter observed across the scrape sequence of
    // one thread never goes backwards (the registry is live, so values
    // only grow). Torn renders classically show up as a counter reset.
    let dispatched = format!("{} ", names::POOL_JOBS_DISPATCHED_TOTAL);
    let mut last = 0.0f64;
    for body in bodies.iter().take(25) {
        if let Some(line) = body
            .lines()
            .find(|l| l.starts_with(&dispatched) || *l == dispatched.trim())
        {
            let value: f64 = line.rsplit(' ').next().unwrap().parse().expect("counter");
            assert!(
                value >= last,
                "counter went backwards under concurrent scraping: {value} < {last}"
            );
            last = value;
        }
    }
}

#[test]
fn monitoring_overhead_stays_below_regression_ceiling() {
    let (service, descriptor) = transcode::live_service();
    let registry = MetricsRegistry::new();
    let dope = Dope::builder(Goal::MinResponseTime { threads: 4 })
        .mechanism(Box::new(WqLinear::new(1, 4, 8.0)))
        .control_period(Duration::from_millis(10))
        .queue_probe(service.queue_probe())
        .metrics(registry.clone())
        .launch(descriptor)
        .expect("launch");

    let params = transcode::VideoParams {
        frames: 6,
        width: 48,
        height: 48,
    };
    for id in 0..32u64 {
        service
            .queue
            .enqueue(transcode::make_video(id, params))
            .unwrap();
    }
    service.queue.close();
    let monitor = dope.monitor();
    dope.wait().expect("drains");
    assert_eq!(service.stats.completed(), 32);

    // The paper claims monitoring costs under 1 % of execution; the
    // regression ceiling is 3x that to absorb noisy CI machines.
    let ratio = monitor.monitoring_overhead_ratio();
    assert!(ratio.is_finite() && ratio >= 0.0, "ratio {ratio}");
    assert!(
        ratio < 0.03,
        "monitoring overhead regressed: {:.4}% of execution",
        ratio * 100.0
    );

    // The same figure is published for scrapers, and agrees.
    let rendered = registry.render();
    let line = rendered
        .lines()
        .find(|l| l.starts_with(names::MONITORING_OVERHEAD_RATIO))
        .expect("overhead ratio is exported");
    let published: f64 = line.rsplit(' ').next().unwrap().parse().expect("gauge");
    assert!(
        published < 0.03,
        "published overhead ratio regressed: {published}"
    );
}

/// Strips the additive `p50/p95/p99_exec_secs` fields from a JSONL
/// trace, turning it back into the pre-percentile dialect.
fn strip_percentile_fields(jsonl: &str) -> String {
    let mut text = jsonl.to_string();
    while let Some(start) = text.find(", \"p50_exec_secs\"") {
        let end = start + text[start..].find('}').expect("stats object closes");
        text.replace_range(start..end, "");
    }
    text
}

#[test]
fn pre_percentile_traces_still_replay_and_summarize() {
    use dope_core::{Resources, StaticMechanism};
    use dope_sim::profile::AmdahlProfile;
    use dope_sim::system::{run_system_observed, SystemParams, TwoLevelModel};
    use dope_trace::{parse_jsonl, replay_into_sim, summarize, Recorder, RecordingObserver};
    use dope_workload::ArrivalSchedule;

    let model = TwoLevelModel::pipeline("transcode", AmdahlProfile::new(4.0, 0.9, 0.1, 0.05));
    let mut mech = StaticMechanism::new(model.config_for_width(8, 4));
    let recorder = Recorder::bounded(4096);
    let mut observer = RecordingObserver::new(recorder.clone()).with_goal("MaxThroughput");
    let outcome = run_system_observed(
        &model,
        &ArrivalSchedule::uniform(1.0, 12),
        &mut mech,
        Resources::threads(8),
        &SystemParams::default(),
        &mut observer,
    );
    observer.finished(outcome.completed, outcome.config_changes);

    // Age the recording: drop every percentile field, as a trace written
    // before the metrics plane existed would lack them.
    let aged = strip_percentile_fields(&recorder.to_jsonl());
    assert!(
        !aged.contains("p50_exec_secs") && recorder.to_jsonl().contains("p50_exec_secs"),
        "the aging surgery must actually remove fields"
    );

    let records = parse_jsonl(&aged).expect("old dialect still parses");
    let replay = replay_into_sim(&records).expect("old dialect still replays");
    assert!(replay.matches(), "replay must reproduce accepted configs");

    let summary = summarize(&records);
    assert!(
        summary.task_p99_exec_secs.is_empty(),
        "absent percentiles summarize as not-measured, not as zeros"
    );
    let text = summary.render();
    assert!(text.contains("finished:"), "{text}");
}
