//! Keeps the prose documentation in lock-step with the code.
//!
//! The Rust examples in `docs/` are already enforced as doctests of the
//! umbrella crate (see `src/lib.rs`). The markdown-prose contracts —
//! the DV diagnostic catalogue and the metric naming table — are
//! enforced by `dope-lint`'s DL003 and DL002 passes, invoked here as a
//! library so plain `cargo test` catches drift with full `file:line`
//! findings instead of ad-hoc string scans. What remains inline are the
//! checks dope-lint does not model: per-event schema sections, the
//! stated schema version, and the book's cross-references.

use std::path::Path;

use dope_lint::{DlCode, Report};
use dope_trace::TraceEvent;

const EVENT_SCHEMA: &str = include_str!("../docs/event-schema.md");
const ARCHITECTURE: &str = include_str!("../docs/architecture.md");
const OPERATOR_GUIDE: &str = include_str!("../docs/operator-guide.md");
const STATIC_ANALYSIS: &str = include_str!("../docs/static-analysis.md");
const OVERLOAD: &str = include_str!("../docs/overload.md");
const BOOK_INDEX: &str = include_str!("../docs/README.md");

fn lint_workspace() -> Report {
    dope_lint::check(Path::new(env!("CARGO_MANIFEST_DIR"))).expect("lint the workspace")
}

fn assert_no_findings(report: &Report, code: DlCode) {
    let drift: Vec<_> = report.findings.iter().filter(|f| f.code == code).collect();
    assert!(
        drift.is_empty(),
        "{code} ({}) drift:\n{drift:#?}",
        code.title()
    );
}

#[test]
fn metric_catalogue_registrations_and_guide_agree() {
    // DL002 closes the loop ad-hoc scans here used to check one side
    // of: names::ALL <-> declared consts <-> live registrations <-> the
    // operator guide's naming table.
    assert_no_findings(&lint_workspace(), DlCode::MetricNameDrift);
}

#[test]
fn dv_catalogue_and_event_schema_book_agree() {
    // DL003: every catalogued DV code documented, every documented code
    // catalogued, every DiagCode reference declared.
    assert_no_findings(&lint_workspace(), DlCode::DvCodeDrift);
}

#[test]
fn every_event_kind_has_a_schema_section() {
    for kind in TraceEvent::KINDS {
        let heading = format!("## `{kind}`");
        assert!(
            EVENT_SCHEMA.contains(&heading),
            "docs/event-schema.md is missing a section for {kind}"
        );
        let example = format!("\"kind\": \"{kind}\"");
        assert!(
            EVENT_SCHEMA.contains(&example),
            "docs/event-schema.md has no worked JSONL example for {kind}"
        );
    }
}

#[test]
fn schema_doc_states_the_current_version() {
    let marker = format!("`v = {}`", dope_trace::SCHEMA_VERSION);
    assert!(
        EVENT_SCHEMA.contains(&marker),
        "docs/event-schema.md must state schema version {}",
        dope_trace::SCHEMA_VERSION
    );
}

#[test]
fn book_pages_cross_reference_each_other() {
    for (name, text) in [
        ("architecture.md", ARCHITECTURE),
        ("operator-guide.md", OPERATOR_GUIDE),
    ] {
        assert!(
            text.contains("event-schema.md"),
            "docs/{name} must point readers at the schema contract"
        );
    }
}

#[test]
fn book_index_links_every_chapter_and_every_link_resolves() {
    // The index must name each chapter file in docs/ exactly once as a
    // link target...
    let chapters =
        std::fs::read_dir(Path::new(env!("CARGO_MANIFEST_DIR")).join("docs")).expect("read docs/");
    for entry in chapters {
        let name = entry.expect("dir entry").file_name();
        let name = name.to_string_lossy();
        if name == "README.md" || !name.ends_with(".md") {
            continue;
        }
        assert!(
            BOOK_INDEX.contains(&format!("]({name})")),
            "docs/README.md does not link chapter {name}"
        );
    }
    // ...and DL007 proves every relative link in the whole book (index
    // included) resolves to a real file and a real heading.
    assert_no_findings(&lint_workspace(), DlCode::DocsLink);
}

#[test]
fn overload_chapter_covers_the_surface_it_owns() {
    // The chapter other pages link to for "the wiring and the alerting
    // guidance" must actually document every policy, every metric
    // family, the trace event, and the mechanism wrapper.
    for needle in [
        "`Open`",
        "`Block`",
        "`Shed`",
        "`Deadline`",
        "dope_admitted_total",
        "dope_shed_total",
        "dope_admission_queue_delay",
        "AdmissionDecision",
        "ShedAware",
        "DV017",
        "offered == admitted + shed_high_water",
    ] {
        assert!(
            OVERLOAD.contains(needle),
            "docs/overload.md is missing {needle}"
        );
    }
}

#[test]
fn static_analysis_doc_catalogues_every_dl_code() {
    for code in DlCode::ALL {
        assert!(
            STATIC_ANALYSIS.contains(code.as_str()),
            "docs/static-analysis.md is missing {}",
            code.as_str()
        );
    }
    assert!(
        STATIC_ANALYSIS.contains("dope-lint: allow("),
        "docs/static-analysis.md must document the waiver syntax"
    );
}

#[test]
fn lock_order_manifest_is_documented() {
    // Every manifest lock name must appear in the static-analysis book's
    // rank table, so the documented order cannot drift from the one the
    // lint (and the debug rank guard) enforce.
    let manifest = std::fs::read_to_string(
        Path::new(env!("CARGO_MANIFEST_DIR")).join("crates/dope-lint/lock-order.txt"),
    )
    .expect("read lock-order manifest");
    for line in manifest.lines() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let (rank, name) = line.split_once(' ').expect("manifest line is `rank name`");
        let row = format!("| {rank} | `{name}` |");
        assert!(
            STATIC_ANALYSIS.contains(&row),
            "docs/static-analysis.md lock-order table is missing `{name}` (rank {rank})"
        );
    }
}
