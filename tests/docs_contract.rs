//! Keeps the prose documentation in lock-step with the code.
//!
//! The Rust examples in `docs/` are already enforced as doctests of the
//! umbrella crate (see `src/lib.rs`); these tests cover the parts
//! doctests cannot see — the diagnostic-code catalogue and the event
//! tables written as markdown prose.

use dope_core::DiagCode;
use dope_metrics::names;
use dope_trace::TraceEvent;

const EVENT_SCHEMA: &str = include_str!("../docs/event-schema.md");
const ARCHITECTURE: &str = include_str!("../docs/architecture.md");
const OPERATOR_GUIDE: &str = include_str!("../docs/operator-guide.md");

/// Every `DVnnn` token in `text`, in order of appearance.
fn dv_codes(text: &str) -> Vec<String> {
    let bytes = text.as_bytes();
    let mut out = Vec::new();
    let mut i = 0;
    while i + 5 <= bytes.len() {
        if bytes[i] == b'D'
            && bytes[i + 1] == b'V'
            && bytes[i + 2].is_ascii_digit()
            && bytes[i + 3].is_ascii_digit()
            && bytes[i + 4].is_ascii_digit()
        {
            out.push(text[i..i + 5].to_string());
            i += 5;
        } else {
            i += 1;
        }
    }
    out
}

#[test]
fn every_documented_dv_code_is_catalogued() {
    let codes = dv_codes(EVENT_SCHEMA);
    assert!(
        codes.len() >= DiagCode::ALL.len(),
        "docs/event-schema.md must list the whole DV catalogue, found {codes:?}"
    );
    for code in &codes {
        let parsed: DiagCode = code
            .parse()
            .unwrap_or_else(|_| panic!("docs/event-schema.md mentions unknown code {code}"));
        assert_eq!(parsed.as_str(), code);
    }
}

#[test]
fn every_catalogued_dv_code_is_documented() {
    let documented = dv_codes(EVENT_SCHEMA);
    for code in DiagCode::ALL {
        assert!(
            documented.iter().any(|c| c == code.as_str()),
            "docs/event-schema.md is missing {} ({code:?})",
            code.as_str()
        );
    }
}

#[test]
fn every_event_kind_has_a_schema_section() {
    for kind in TraceEvent::KINDS {
        let heading = format!("## `{kind}`");
        assert!(
            EVENT_SCHEMA.contains(&heading),
            "docs/event-schema.md is missing a section for {kind}"
        );
        let example = format!("\"kind\": \"{kind}\"");
        assert!(
            EVENT_SCHEMA.contains(&example),
            "docs/event-schema.md has no worked JSONL example for {kind}"
        );
    }
}

#[test]
fn schema_doc_states_the_current_version() {
    let marker = format!("`v = {}`", dope_trace::SCHEMA_VERSION);
    assert!(
        EVENT_SCHEMA.contains(&marker),
        "docs/event-schema.md must state schema version {}",
        dope_trace::SCHEMA_VERSION
    );
}

/// Every metric name documented in the operator guide's naming table
/// (rows of the form `| \`dope_...\` | ...`), in order of appearance.
fn documented_metric_names(text: &str) -> Vec<String> {
    text.lines()
        .filter_map(|line| line.strip_prefix("| `dope_"))
        .filter_map(|rest| rest.split('`').next())
        .map(|name| format!("dope_{name}"))
        .collect()
}

#[test]
fn every_canonical_metric_name_is_documented() {
    let documented = documented_metric_names(OPERATOR_GUIDE);
    for &name in names::ALL {
        assert!(
            documented.iter().any(|d| d == name),
            "docs/operator-guide.md metric table is missing {name}"
        );
    }
}

#[test]
fn every_documented_metric_name_is_canonical() {
    let documented = documented_metric_names(OPERATOR_GUIDE);
    assert!(
        !documented.is_empty(),
        "operator guide must carry a metric naming table"
    );
    for name in &documented {
        assert!(
            names::ALL.contains(&name.as_str()),
            "docs/operator-guide.md documents unknown metric {name}"
        );
    }
}

#[test]
fn book_pages_cross_reference_each_other() {
    for (name, text) in [
        ("architecture.md", ARCHITECTURE),
        ("operator-guide.md", OPERATOR_GUIDE),
    ] {
        assert!(
            text.contains("event-schema.md"),
            "docs/{name} must point readers at the schema contract"
        );
    }
}
