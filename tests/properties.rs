//! Property-based tests of the core invariants.

use dope_core::nest;
use dope_core::{Config, ProgramShape, ShapeNode, TaskKind};
use dope_mechanisms::WqLinear;
use proptest::prelude::*;

/// An arbitrary two-level shape: optional sequential endpoints around one
/// parallel leaf, plus an optional sequential-transaction alternative.
fn two_level_shape(seq_endpoints: bool, seq_alt: bool, cap: Option<u32>) -> ProgramShape {
    let mut stages = Vec::new();
    if seq_endpoints {
        stages.push(ShapeNode::leaf("read", TaskKind::Seq));
    }
    let mut par = ShapeNode::leaf("work", TaskKind::Par);
    par.max_extent = cap;
    stages.push(par);
    if seq_endpoints {
        stages.push(ShapeNode::leaf("write", TaskKind::Seq));
    }
    let mut alternatives = vec![stages];
    if seq_alt {
        alternatives.push(vec![ShapeNode::leaf("whole", TaskKind::Seq)]);
    }
    ProgramShape::new(vec![ShapeNode {
        name: "outer".into(),
        kind: TaskKind::Par,
        max_extent: None,
        alternatives,
    }])
}

proptest! {
    /// Every configuration built by `config_for_width` validates against
    /// its own shape and the thread budget, for any width request.
    #[test]
    fn config_for_width_always_validates(
        threads in 1u32..64,
        width in 0u32..64,
        seq_endpoints in any::<bool>(),
        seq_alt in any::<bool>(),
        cap in prop::option::of(1u32..16),
    ) {
        let shape = two_level_shape(seq_endpoints, seq_alt, cap);
        let nest = nest::find_two_level(&shape).expect("two-level shape");
        // Feasibility precondition (documented on `config_for_width`):
        // the budget must fit the smallest representable transaction.
        let min_footprint = if seq_alt {
            1
        } else {
            nest::seq_leaves(&shape, &nest) + 1
        };
        prop_assume!(threads >= min_footprint);
        let config = nest::config_for_width(&shape, &nest, threads, width);
        prop_assert!(config.validate(&shape, threads).is_ok(),
            "width {width} threads {threads}: {config}");
    }

    /// Width round-trips through the configuration when it is
    /// representable (above the sequential-endpoint floor and below caps).
    #[test]
    fn width_roundtrips_when_representable(
        threads in 4u32..64,
        width in 1u32..24,
    ) {
        let shape = two_level_shape(true, true, None);
        let nest = nest::find_two_level(&shape).expect("two-level shape");
        let config = nest::config_for_width(&shape, &nest, threads, width);
        let observed = nest::width_of(&config, &nest);
        // Requests are clamped to the thread budget first; below the
        // sequential-endpoint floor they collapse to the sequential
        // alternative.
        let clamped = width.min(threads);
        if clamped > 2 {
            prop_assert_eq!(observed, clamped);
        } else {
            prop_assert_eq!(observed, 1, "sub-floor widths clamp to sequential");
        }
    }

    /// The even static split never exceeds its budget and never assigns a
    /// zero extent.
    #[test]
    fn even_split_respects_budget(
        threads in 1u32..128,
        par_stages in 1usize..6,
        seq_stages in 0usize..3,
    ) {
        let mut stages = Vec::new();
        for i in 0..seq_stages {
            stages.push(ShapeNode::leaf(format!("s{i}"), TaskKind::Seq));
        }
        for i in 0..par_stages {
            stages.push(ShapeNode::leaf(format!("p{i}"), TaskKind::Par));
        }
        let shape = ProgramShape::new(stages);
        let config = Config::even(&shape, threads);
        prop_assert!(config.total_threads() >= (seq_stages + par_stages) as u32);
        // The even split gives sequential tasks one thread and spreads the
        // rest; it may exceed a *tiny* budget (fewer threads than tasks)
        // but never a feasible one.
        if threads >= (seq_stages + par_stages) as u32 {
            prop_assert!(config.total_threads() <= threads.max(1),
                "{} > {threads}", config.total_threads());
        }
    }

    /// WQ-Linear's width is monotone non-increasing in queue occupancy and
    /// always within `[Mmin, Mmax]` (Equation 2).
    #[test]
    fn wq_linear_is_monotone_and_bounded(
        m_min in 1u32..4,
        span in 0u32..12,
        q_max in 1.0f64..64.0,
        occupancies in prop::collection::vec(0.0f64..128.0, 1..32),
    ) {
        let m_max = m_min + span;
        let mech = WqLinear::new(m_min, m_max, q_max);
        let mut sorted = occupancies.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
        let mut last = u32::MAX;
        for occ in sorted {
            let w = mech.width_for_occupancy(occ);
            prop_assert!(w >= m_min && w <= m_max);
            prop_assert!(w <= last, "width must not grow with occupancy");
            last = w;
        }
    }

    /// Response statistics: percentiles are order statistics — bounded by
    /// min and max, monotone in the quantile.
    #[test]
    fn percentiles_are_monotone(
        samples in prop::collection::vec(0.0f64..1e6, 1..64),
        q1 in 0.0f64..1.0,
        q2 in 0.0f64..1.0,
    ) {
        let mut stats = dope_workload::ResponseStats::new();
        for s in &samples {
            stats.record(*s);
        }
        let (lo, hi) = if q1 <= q2 { (q1, q2) } else { (q2, q1) };
        let p_lo = stats.percentile(lo).expect("non-empty");
        let p_hi = stats.percentile(hi).expect("non-empty");
        prop_assert!(p_lo <= p_hi);
        prop_assert!(p_hi <= stats.max().expect("non-empty"));
    }

    /// The open-system simulator conserves requests: everything submitted
    /// completes, exactly once, with non-negative response times.
    #[test]
    fn simulator_conserves_requests(
        load in 0.1f64..1.2,
        width in 1u32..10,
        requests in 10usize..120,
        seed in 0u64..1000,
    ) {
        use dope_core::{Resources, StaticMechanism};
        use dope_sim::system::{run_system, SystemParams};
        use dope_sim::AmdahlProfile;
        use dope_sim::system::TwoLevelModel;
        use dope_workload::ArrivalSchedule;

        let model = TwoLevelModel::pipeline(
            "t",
            AmdahlProfile::new(5.0, 0.95, 0.1, 0.05),
        );
        let schedule = ArrivalSchedule::for_load_factor(
            load,
            model.max_throughput(24, 1),
            requests,
            seed,
        );
        let mut mech = StaticMechanism::new(model.config_for_width(24, width));
        let out = run_system(
            &model,
            &schedule,
            &mut mech,
            Resources::threads(24),
            &SystemParams::default(),
        );
        prop_assert_eq!(out.completed, requests as u64);
        prop_assert_eq!(out.response.count(), requests);
        prop_assert!(out.response.min().expect("non-empty") >= 0.0);
        // Response is never below the pure service time.
        let exec = model.exec_time(model.width_of(&out.final_config));
        prop_assert!(out.response.percentile(0.0).expect("non-empty") >= exec - 1e-9);
    }
}

/// Reference implementation of thread accounting, written independently
/// of `TaskConfig::threads`: leaves cost their extent, nests cost
/// `extent x max(1, sum(children))`, computed in u64 so the property
/// can also assert that no overflow occurred in the tested range.
fn reference_threads(task: &dope_core::TaskConfig) -> u64 {
    match &task.nested {
        None => u64::from(task.extent),
        Some(nest) => {
            let inner: u64 = nest.tasks.iter().map(reference_threads).sum();
            u64::from(task.extent) * inner.max(1)
        }
    }
}

proptest! {
    /// `TaskConfig::threads` agrees with the independent recursive sum on
    /// arbitrary three-level trees (leaves at the root, a nest of leaves,
    /// and a nest containing a further nest).
    #[test]
    fn task_config_threads_matches_reference(
        leaf_extents in prop::collection::vec(0u32..50, 0..6),
        inner_extents in prop::collection::vec(0u32..50, 0..6),
        outer_extent in 0u32..50,
        deep_extent in 0u32..10,
    ) {
        use dope_core::TaskConfig;

        let mut tasks: Vec<TaskConfig> = leaf_extents
            .iter()
            .enumerate()
            .map(|(i, &e)| TaskConfig::leaf(format!("l{i}"), e))
            .collect();
        let mut inner: Vec<TaskConfig> = inner_extents
            .iter()
            .enumerate()
            .map(|(i, &e)| TaskConfig::leaf(format!("i{i}"), e))
            .collect();
        inner.push(TaskConfig::nest(
            "deep",
            deep_extent,
            0,
            vec![TaskConfig::leaf("d0", 3)],
        ));
        tasks.push(TaskConfig::nest("outer", outer_extent, 0, inner));

        let config = Config::new(tasks);
        let expected: u64 = config.tasks.iter().map(reference_threads).sum();
        prop_assert!(expected <= u64::from(u32::MAX), "range keeps sums in u32");
        prop_assert_eq!(u64::from(config.total_threads()), expected);
        for (_, node) in config.paths() {
            prop_assert_eq!(u64::from(node.threads()), reference_threads(node));
        }
    }

    /// Soundness and completeness of the static analyzer with respect to
    /// the runtime validator, over randomly (mis)configured trees:
    ///
    /// * analyzer-clean (no error diagnostics) implies `validate` accepts;
    /// * `validate` rejecting implies the analyzer reports an error.
    #[test]
    fn analyzer_agrees_with_validator(
        outer in 0u32..6,
        read in 0u32..4,
        transform in 0u32..24,
        write in 0u32..4,
        alt in 0usize..3,
        threads in 1u32..64,
        break_name in any::<bool>(),
        drop_stage in any::<bool>(),
    ) {
        use dope_core::{Resources, TaskConfig};

        let shape = ProgramShape::new(vec![ShapeNode {
            name: "txn".into(),
            kind: TaskKind::Par,
            max_extent: None,
            alternatives: vec![
                vec![
                    ShapeNode::leaf("read", TaskKind::Seq),
                    ShapeNode::leaf("transform", TaskKind::Par).with_max_extent(16),
                    ShapeNode::leaf("write", TaskKind::Seq),
                ],
                vec![ShapeNode::leaf("whole", TaskKind::Seq)],
            ],
        }]);
        let mut stages = vec![
            TaskConfig::leaf("read", read),
            TaskConfig::leaf("transform", transform),
            TaskConfig::leaf("write", write),
        ];
        if break_name {
            stages[1].name = "transmogrify".into();
        }
        if drop_stage {
            stages.pop();
        }
        let config = Config::new(vec![TaskConfig::nest("txn", outer, alt, stages)]);

        let report = dope_verify::analyze(&shape, &config, &Resources::threads(threads));
        let verdict = config.validate(&shape, threads);
        if !report.has_errors() {
            prop_assert!(
                verdict.is_ok(),
                "analyzer-clean config rejected by validate: {:?} for {config}",
                verdict
            );
        }
        if let Err(err) = &verdict {
            prop_assert!(
                report.has_errors(),
                "validate rejected ({err}) but the analyzer found nothing for {config}"
            );
        }
    }
}
