//! Decision-audit acceptance tests.
//!
//! Every mechanism must explain every decision it takes — a non-empty
//! [`DecisionTrace`](dope_core::DecisionTrace) with a stable rationale
//! code, the signals it read, and the candidates it weighed — and the
//! live executive must turn those explanations into scored
//! `DecisionTraced` events (predicted vs realized throughput) plus
//! prediction-error metrics in the live scrape.

use dope_apps::transcode;
use dope_core::{
    Config, Goal, Mechanism, MonitorSnapshot, ProgramShape, Rationale, Resources, ShapeNode,
    TaskConfig, TaskKind, TaskPath, TaskStats,
};
use dope_mechanisms::{Fdp, Oracle, Proportional, Seda, Tbf, Tpc, WqLinear, WqLinearH, WqtH};
use dope_metrics::{names, MetricsRegistry};
use dope_runtime::Dope;
use dope_trace::{explain, parse_jsonl, Recorder, TraceEvent};
use std::time::{Duration, Instant};

fn pipeline_shape() -> ProgramShape {
    ProgramShape::new(vec![ShapeNode {
        name: "pipe".into(),
        kind: TaskKind::Par,
        max_extent: Some(1),
        alternatives: vec![
            vec![
                ShapeNode::leaf("in", TaskKind::Seq),
                ShapeNode::leaf("a", TaskKind::Par),
                ShapeNode::leaf("b", TaskKind::Par),
                ShapeNode::leaf("out", TaskKind::Seq),
            ],
            vec![
                ShapeNode::leaf("in", TaskKind::Seq),
                ShapeNode::leaf("fused", TaskKind::Par),
                ShapeNode::leaf("out", TaskKind::Seq),
            ],
        ],
    }])
}

fn two_level_shape() -> ProgramShape {
    ProgramShape::new(vec![ShapeNode {
        name: "txn".into(),
        kind: TaskKind::Par,
        max_extent: None,
        alternatives: vec![
            vec![
                ShapeNode::leaf("read", TaskKind::Seq),
                ShapeNode::leaf("work", TaskKind::Par),
            ],
            vec![ShapeNode::leaf("whole", TaskKind::Seq)],
        ],
    }])
}

fn pipeline_config(extents: &[u32]) -> Config {
    Config::new(vec![TaskConfig::nest(
        "pipe",
        1,
        0,
        extents
            .iter()
            .zip(["in", "a", "b", "out"])
            .map(|(&e, n)| TaskConfig::leaf(n, e))
            .collect(),
    )])
}

fn snapshot(
    time_secs: f64,
    execs: &[f64],
    loads: &[f64],
    queue_occupancy: f64,
    power: Option<f64>,
    dispatches: u64,
) -> MonitorSnapshot {
    let mut snap = MonitorSnapshot::at(time_secs);
    for (i, (&e, &l)) in execs.iter().zip(loads).enumerate() {
        snap.tasks.insert(
            TaskPath::root_child(0).child(i as u16),
            TaskStats {
                invocations: 100 + dispatches,
                mean_exec_secs: e,
                throughput: if e > 0.0 { 1.0 / e } else { 0.0 },
                load: l,
                utilization: 0.7,
                ..TaskStats::default()
            },
        );
    }
    snap.queue.occupancy = queue_occupancy;
    snap.power_watts = power;
    snap.dispatches_since_reconfig = dispatches;
    snap
}

/// What a mechanism's explanations looked like over a snapshot grid.
struct AuditTally {
    consults: usize,
    explained: usize,
    with_observed: usize,
    with_candidates: usize,
    with_prediction: usize,
}

/// Consults `mech` over `snaps`, applying valid proposals, and demands
/// a well-formed explanation after every consult.
fn drive_and_audit(
    mech: &mut dyn Mechanism,
    shape: &ProgramShape,
    initial: Config,
    threads: u32,
    snaps: &[MonitorSnapshot],
) -> AuditTally {
    let res = Resources::threads(threads).with_power_budget(630.0);
    let mut current = mech
        .initial(shape, &res)
        .filter(|c| c.validate(shape, threads).is_ok())
        .unwrap_or(initial);
    let mut tally = AuditTally {
        consults: 0,
        explained: 0,
        with_observed: 0,
        with_candidates: 0,
        with_prediction: 0,
    };
    for snap in snaps {
        let proposal = mech.reconfigure(snap, &current, shape, &res);
        tally.consults += 1;
        let trace = mech
            .explain()
            .unwrap_or_else(|| panic!("{} did not explain a consult", mech.name()));
        assert!(
            !trace.chosen.is_empty(),
            "{} explained an unlabeled decision",
            mech.name()
        );
        assert_eq!(
            Rationale::from_code(trace.rationale.code()),
            Some(trace.rationale),
            "{} used a rationale whose code does not round-trip",
            mech.name()
        );
        for candidate in &trace.candidates {
            assert!(
                !candidate.action.is_empty(),
                "{} weighed an unlabeled candidate",
                mech.name()
            );
        }
        tally.explained += 1;
        if !trace.observed.is_empty() {
            tally.with_observed += 1;
        }
        if !trace.candidates.is_empty() {
            tally.with_candidates += 1;
        }
        if trace.predicted_throughput.is_some() {
            tally.with_prediction += 1;
        }
        if let Some(p) = proposal {
            if p.validate(shape, threads).is_ok() {
                current = p.clone();
                mech.applied(&p);
            }
        }
    }
    tally
}

fn assert_audit(name: &str, tally: &AuditTally) {
    assert_eq!(
        tally.explained,
        tally.consults,
        "{name} skipped explaining {} of {} consults",
        tally.consults - tally.explained,
        tally.consults
    );
    assert!(
        tally.with_observed >= 1,
        "{name} never reported an observed signal"
    );
    assert!(
        tally.with_candidates >= 1,
        "{name} never reported a candidate set"
    );
    assert!(
        tally.with_prediction >= 1,
        "{name} never predicted a throughput"
    );
}

/// A pipeline grid that sweeps from imbalanced to balanced stages, with
/// the queue filling and the power signal crossing the budget, so each
/// mechanism's decision logic exercises more than one branch.
fn pipeline_grid() -> Vec<MonitorSnapshot> {
    (0..16u64)
        .map(|i| {
            let t = i as f64;
            let skew = 1.0 + (15 - i) as f64 / 4.0;
            let execs = [0.002, 0.01 * skew, 0.008, 0.002];
            let loads = [0.5, 3.0 * skew, 2.0, 0.5];
            let power = Some(560.0 + 12.0 * t); // crosses the 630 W budget
            snapshot(t, &execs, &loads, t, power, i * 40)
        })
        .collect()
}

/// A two-level grid sweeping queue occupancy up and back down.
fn two_level_grid() -> Vec<MonitorSnapshot> {
    (0..16u64)
        .map(|i| {
            let t = i as f64;
            let occ = if i < 8 {
                2.0 * t
            } else {
                2.0 * (15 - i) as f64
            };
            snapshot(t, &[0.01], &[occ], occ, None, i * 25)
        })
        .collect()
}

#[test]
fn every_pipeline_mechanism_explains_every_consult() {
    let shape = pipeline_shape();
    let initial = pipeline_config(&[1, 1, 1, 1]);
    let grid = pipeline_grid();
    let mut mechanisms: Vec<Box<dyn Mechanism>> = vec![
        Box::new(Proportional::new()),
        Box::new(Tbf::new()),
        Box::new(Tbf::without_fusion()),
        Box::new(Fdp::default()),
        Box::new(Tpc::default()),
        Box::new(Seda::default()),
    ];
    for mech in &mut mechanisms {
        let name = mech.name();
        let tally = drive_and_audit(mech.as_mut(), &shape, initial.clone(), 24, &grid);
        assert_audit(name, &tally);
    }
}

#[test]
fn every_two_level_mechanism_explains_every_consult() {
    let shape = two_level_shape();
    let nest = dope_core::nest::find_two_level(&shape).expect("two-level");
    let initial = dope_core::nest::config_for_width(&shape, &nest, 24, 4);
    let grid = two_level_grid();
    let mut mechanisms: Vec<Box<dyn Mechanism>> = vec![
        Box::new(WqLinear::new(1, 8, 16.0)),
        Box::new(WqLinearH::new(1, 8, 16.0, 2)),
        Box::new(WqtH::new(4.0, 8, 2, 2)),
        Box::new(Oracle::from_table(vec![(2.0, 8), (8.0, 2)], 1)),
    ];
    for mech in &mut mechanisms {
        let name = mech.name();
        let tally = drive_and_audit(mech.as_mut(), &shape, initial.clone(), 24, &grid);
        assert_audit(name, &tally);
    }
}

#[test]
fn live_run_records_scored_decisions_and_prediction_metrics() {
    let (service, descriptor) = transcode::live_service();
    let registry = MetricsRegistry::new();
    let recorder = Recorder::bounded(65_536);
    let dope = Dope::builder(Goal::MinResponseTime { threads: 4 })
        .mechanism(Box::new(WqLinear::new(1, 4, 8.0)))
        .control_period(Duration::from_millis(10))
        .queue_probe(service.queue_probe())
        .metrics(registry.clone())
        .recorder(recorder.clone())
        .launch(descriptor)
        .expect("launch");

    let params = transcode::VideoParams {
        frames: 6,
        width: 48,
        height: 48,
    };
    for id in 0..48u64 {
        service
            .queue
            .enqueue(transcode::make_video(id, params))
            .unwrap();
    }
    // The service keeps running until the queue closes, so wait (bounded)
    // for a decision to be scored against a follow-up snapshot.
    let deadline = Instant::now() + Duration::from_secs(10);
    while Instant::now() < deadline {
        let scored = recorder.records().iter().any(|r| {
            matches!(
                r.event,
                TraceEvent::DecisionTraced {
                    prediction_error: Some(_),
                    ..
                }
            )
        });
        if scored {
            break;
        }
        std::thread::sleep(Duration::from_millis(10));
    }
    service.queue.close();
    dope.wait().expect("drains");

    let records = parse_jsonl(&recorder.to_jsonl()).expect("live trace parses strictly");
    let decisions: Vec<_> = records
        .iter()
        .filter(|r| matches!(r.event, TraceEvent::DecisionTraced { .. }))
        .collect();
    assert!(
        !decisions.is_empty(),
        "a live adaptive run must record decisions"
    );
    let scored = decisions
        .iter()
        .filter(|r| {
            matches!(
                r.event,
                TraceEvent::DecisionTraced {
                    prediction_error: Some(_),
                    realized_throughput: Some(_),
                    ..
                }
            )
        })
        .count();
    assert!(
        scored >= 1,
        "no decision was scored against a follow-up snapshot ({} unscored)",
        decisions.len()
    );

    // The audit renders from the live trace and re-emits strict JSONL.
    let report = explain(&records);
    assert_eq!(report.len(), decisions.len());
    let text = report.render();
    assert!(text.contains("decision audit"), "{text}");
    assert!(text.contains("WQ-Linear/"), "{text}");
    assert!(text.contains("error "), "{text}");
    let reparsed = parse_jsonl(&report.to_jsonl()).expect("audit JSONL parses strictly");
    assert_eq!(reparsed.len(), report.len());

    // The metrics plane saw the same decisions: rationale counters and
    // the sign-labelled prediction-error histogram are in the scrape.
    let rendered = registry.render();
    assert!(
        rendered.contains(names::DECISION_RATIONALE_TOTAL),
        "{rendered}"
    );
    assert!(
        rendered.contains(&format!(
            "rationale=\"{}\"",
            Rationale::OccupancyLinear.code()
        )),
        "{rendered}"
    );
    assert!(
        rendered.contains(&format!("{}_count", names::MECHANISM_PREDICTION_ERROR)),
        "{rendered}"
    );
    assert!(rendered.contains("sign=\"over\""), "{rendered}");
    assert!(rendered.contains("sign=\"under\""), "{rendered}");
    let error_count: u64 = rendered
        .lines()
        .filter(|l| l.starts_with(&format!("{}_count", names::MECHANISM_PREDICTION_ERROR)))
        .map(|l| l.rsplit(' ').next().unwrap().parse::<u64>().unwrap())
        .sum();
    assert!(
        error_count as usize >= scored,
        "histogram count {error_count} lags the {scored} scored decisions"
    );
}
